// Package evolve is the evolving-graph subsystem: a mutable, versioned
// layer over the static CSR graphs of internal/graph, plus an incremental
// maintainer that repairs sampled RR collections after graph mutations
// instead of throwing them away (see repair.go).
//
// The static pipeline assumes a frozen graph; real social networks gain
// and lose edges continuously. evolve.Graph accepts batched mutations
// (edge insert/delete/reweight, node growth) against a canonical
// order-preserving edge list, and materializes immutable CSR snapshots on
// demand — samplers only ever see a snapshot, never a graph mid-mutation.
// Each applied batch bumps a version counter and appends to a bounded
// delta log, so a consumer holding state derived from version v can ask
// "what changed since v" (DeltaSince) and update incrementally; consumers
// too far behind the log's retention fall back to a cold rebuild.
//
// Ordering is the load-bearing invariant (DESIGN.md §8.2): deletions
// remove an edge without reordering the survivors and insertions append,
// so the in-edge list of any head whose edges were not touched is
// byte-identical — content and order — between consecutive snapshots.
// Reverse-reachable sampling consumes randomness per in-edge in list
// order, which is what makes untouched RR sets reusable bit-for-bit.
package evolve

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/graph"
)

// EdgeKey names a directed edge by its endpoints. With parallel edges the
// key is ambiguous; Delete removes the most recently inserted live
// occurrence and Reweight rewrites all of them.
type EdgeKey struct {
	From, To uint32
}

// Batch is one atomic group of mutations. Application order within a
// batch is: AddNodes, Deletes, Reweights, Inserts — so a batch may delete
// an existing edge and insert its replacement, and deletes/reweights
// always refer to pre-batch edges. Either the whole batch applies or none
// of it does.
type Batch struct {
	// AddNodes grows the node-id space by this many fresh isolated nodes.
	AddNodes int
	// Deletes removes one live occurrence of each key.
	Deletes []EdgeKey
	// Reweights sets the weight of every live occurrence of the edge.
	// Ignored weights-wise when the graph has a WeightPolicy (the policy
	// re-derives the head's weights), but still marks the head as touched.
	Reweights []graph.Edge
	// Inserts appends new edges. Under a WeightPolicy the given weight is
	// provisional (the policy overwrites the head's in-weights); without
	// one it is used as-is and must lie in [0, 1].
	Inserts []graph.Edge
}

// Empty reports whether the batch contains no mutations.
func (b *Batch) Empty() bool {
	return b.AddNodes == 0 && len(b.Deletes) == 0 && len(b.Reweights) == 0 && len(b.Inserts) == 0
}

// Mutations returns the number of individual mutations in the batch.
func (b *Batch) Mutations() int {
	return b.AddNodes + len(b.Deletes) + len(b.Reweights) + len(b.Inserts)
}

// Delta summarizes everything that changed between two versions, in the
// form the RR-set maintainer needs: the node-count transition and the set
// of heads (edge targets) whose in-edge list changed in any way.
type Delta struct {
	// NBefore and NAfter are the node counts at the two versions.
	NBefore, NAfter int
	// Heads are the distinct targets of every inserted, deleted, or
	// reweighted edge across the merged batches, sorted ascending.
	Heads []uint32
}

// Empty reports whether the delta implies no change visible to sampling.
func (d *Delta) Empty() bool {
	return d.NBefore == d.NAfter && len(d.Heads) == 0
}

// ErrUnknownEdge reports a delete or reweight of an edge with no live
// occurrence at its point in the batch.
var ErrUnknownEdge = errors.New("evolve: edge does not exist")

// Options tunes a Graph. The zero value is usable.
type Options struct {
	// CompactFraction triggers physical compaction of the canonical edge
	// list (dropping delete tombstones and rebuilding the in-edge index)
	// once dead entries exceed this fraction of live ones. Default 0.25.
	CompactFraction float64
	// MaxLogMutations bounds the total mutations retained in the delta
	// log; the oldest batches are dropped past it, and consumers behind
	// the drop see DeltaSince fail (cold rebuild). Default 1<<20.
	MaxLogMutations int
}

func (o Options) withDefaults() Options {
	if o.CompactFraction <= 0 {
		o.CompactFraction = 0.25
	}
	if o.MaxLogMutations <= 0 {
		o.MaxLogMutations = 1 << 20
	}
	return o
}

// logEntry records one applied batch for DeltaSince: the version it
// produced, the node-count transition, and the touched heads.
type logEntry struct {
	toVersion uint64
	nBefore   int
	nAfter    int
	heads     []uint32
	mutations int
}

// Graph is a mutable, versioned graph. All methods are safe for
// concurrent use; Snapshot returns immutable CSR views that remain valid
// (and unchanged) after further mutations.
type Graph struct {
	mu sync.Mutex

	n     int
	edges []graph.Edge // canonical list; dead entries are tombstoned
	dead  []bool
	inIdx map[uint32][]int32 // head -> live positions in edges, ascending
	live  int                // live edge count
	nDead int

	policy  WeightPolicy
	opts    Options
	version uint64
	log     []logEntry
	logMuts int

	snap *graph.Graph // cached snapshot for the current version, nil if stale
}

// New wraps a built (and, typically, weighted) static graph. The graph's
// forward-CSR edge order becomes the initial canonical order. The
// version-0 snapshot is rebuilt from that canonical order rather than
// aliasing g: g's own in-edge order reflects whatever order its builder
// supplied edges in, and reusing it would let untouched heads change
// in-edge order between version 0 and the first post-mutation snapshot —
// exactly the instability the canonical order exists to prevent.
// policy may be nil for explicit-weight graphs.
func New(g *graph.Graph, policy WeightPolicy, opts Options) *Graph {
	edges := g.Edges()
	e := &Graph{
		n:      g.N(),
		edges:  edges,
		dead:   make([]bool, len(edges)),
		inIdx:  make(map[uint32][]int32),
		live:   len(edges),
		policy: policy,
		opts:   opts.withDefaults(),
	}
	for i, ed := range edges {
		e.inIdx[ed.To] = append(e.inIdx[ed.To], int32(i))
	}
	return e
}

// Restore rebuilds a Graph from a previously captured canonical state:
// the node count, the live edges in canonical order (exactly as Edges
// returned them), and the version the state was captured at. It is the
// recovery half of the WAL/checkpoint protocol (internal/wal): the
// checkpoint stores topology only, and Restore re-derives every head's
// in-weights through the policy — policies make weights a pure function
// of (head, in-edge list), so the restored weights are bit-identical to
// the ones the pre-crash graph carried (DESIGN.md §8's warm-equals-cold
// argument). With a nil policy the given edge weights are used as-is
// and must lie in [0, 1].
//
// The delta log starts empty: consumers holding pre-crash derived state
// see DeltaSince fail and rebuild cold, which is the correct (and only
// safe) answer after a restart.
func Restore(n int, edges []graph.Edge, version uint64, policy WeightPolicy, opts Options) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("evolve: restore with negative n %d", n)
	}
	for _, ed := range edges {
		if int(ed.From) >= n || int(ed.To) >= n {
			return nil, fmt.Errorf("%w: restore edge %d -> %d with n=%d", graph.ErrNodeRange, ed.From, ed.To, n)
		}
		if policy == nil && !(ed.Weight >= 0 && ed.Weight <= 1) {
			return nil, fmt.Errorf("%w: restore edge %d -> %d weight %v", graph.ErrBadWeight, ed.From, ed.To, ed.Weight)
		}
	}
	own := append([]graph.Edge(nil), edges...)
	e := &Graph{
		n:       n,
		edges:   own,
		dead:    make([]bool, len(own)),
		inIdx:   make(map[uint32][]int32),
		live:    len(own),
		policy:  policy,
		opts:    opts.withDefaults(),
		version: version,
	}
	for i, ed := range own {
		e.inIdx[ed.To] = append(e.inIdx[ed.To], int32(i))
	}
	if policy != nil {
		heads := make(map[uint32]struct{}, len(e.inIdx))
		for h := range e.inIdx {
			heads[h] = struct{}{}
		}
		e.reweighHeads(sortedHeads(heads))
	}
	return e, nil
}

// Version returns the number of batches applied so far.
func (e *Graph) Version() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.version
}

// N returns the current node count.
func (e *Graph) N() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// M returns the current live edge count.
func (e *Graph) M() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.live
}

// Edges returns a copy of the live edges in canonical order — the order
// Snapshot's CSR preserves per head.
func (e *Graph) Edges() []graph.Edge {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]graph.Edge, 0, e.live)
	for i, ed := range e.edges {
		if !e.dead[i] {
			out = append(out, ed)
		}
	}
	return out
}

// Snapshot materializes (or returns the cached) immutable CSR view of the
// current state, together with its version. The returned graph must not
// be mutated; it stays valid after further Apply calls.
func (e *Graph) Snapshot() (*graph.Graph, uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.snap == nil {
		liveEdges := make([]graph.Edge, 0, e.live)
		for i, ed := range e.edges {
			if !e.dead[i] {
				liveEdges = append(liveEdges, ed)
			}
		}
		g, err := graph.FromEdges(e.n, liveEdges)
		if err != nil {
			// Unreachable: Apply validates every endpoint and weight.
			panic(fmt.Sprintf("evolve: snapshot of validated state failed: %v", err))
		}
		e.snap = g
	}
	return e.snap, e.version
}

// SnapshotMemoryBytes reports the CSR footprint of the currently cached
// snapshot — 0 when no snapshot is materialized (none built yet, or
// invalidated by a mutation). It feeds the server's capacity ledger:
// snapshot bytes appear exactly while a servable CSR exists, so ledger
// totals track real retention rather than a high-water mark.
func (e *Graph) SnapshotMemoryBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snap.MemoryBytes()
}

// validateLocked checks a batch against the current state without
// mutating anything. Caller holds mu.
func (e *Graph) validateLocked(b Batch) error {
	if b.AddNodes < 0 {
		return fmt.Errorf("evolve: negative AddNodes %d", b.AddNodes)
	}
	newN := e.n + b.AddNodes
	pendingDel := make(map[EdgeKey]int)
	for _, k := range b.Deletes {
		if int(k.From) >= e.n || int(k.To) >= e.n {
			return fmt.Errorf("%w: delete %d -> %d with n=%d", graph.ErrNodeRange, k.From, k.To, e.n)
		}
		if e.liveCount(k)-pendingDel[k] <= 0 {
			return fmt.Errorf("%w: delete %d -> %d", ErrUnknownEdge, k.From, k.To)
		}
		pendingDel[k]++
	}
	for _, ed := range b.Reweights {
		k := EdgeKey{ed.From, ed.To}
		if int(ed.From) >= e.n || int(ed.To) >= e.n {
			return fmt.Errorf("%w: reweight %d -> %d with n=%d", graph.ErrNodeRange, ed.From, ed.To, e.n)
		}
		if e.liveCount(k)-pendingDel[k] <= 0 {
			return fmt.Errorf("%w: reweight %d -> %d", ErrUnknownEdge, ed.From, ed.To)
		}
		if !(ed.Weight >= 0 && ed.Weight <= 1) {
			return fmt.Errorf("%w: reweight %d -> %d weight %v", graph.ErrBadWeight, ed.From, ed.To, ed.Weight)
		}
	}
	for _, ed := range b.Inserts {
		if int(ed.From) >= newN || int(ed.To) >= newN {
			return fmt.Errorf("%w: insert %d -> %d with n=%d", graph.ErrNodeRange, ed.From, ed.To, newN)
		}
		if !(ed.Weight >= 0 && ed.Weight <= 1) {
			return fmt.Errorf("%w: insert %d -> %d weight %v", graph.ErrBadWeight, ed.From, ed.To, ed.Weight)
		}
	}
	return nil
}

// Validate checks whether Apply would accept the batch, without
// applying it. The write-ahead log uses it to order durability before
// mutation: a batch is validated, logged, and only then applied, so a
// logged record always replays cleanly — Apply after a successful
// Validate cannot fail (the caller must not mutate the graph in
// between; the server holds its per-dataset lock across both).
func (e *Graph) Validate(b Batch) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.validateLocked(b)
}

// Apply validates and applies one batch atomically, returning the new
// version. On error the graph is unchanged.
func (e *Graph) Apply(b Batch) (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	// Validate everything before mutating anything.
	if err := e.validateLocked(b); err != nil {
		return e.version, err
	}
	newN := e.n + b.AddNodes

	// Apply. Track touched heads for the delta log and the policy.
	nBefore := e.n
	e.n = newN
	headSet := make(map[uint32]struct{})
	for _, k := range b.Deletes {
		e.deleteLatest(k)
		headSet[k.To] = struct{}{}
	}
	for _, ed := range b.Reweights {
		for _, pos := range e.inIdx[ed.To] {
			if e.edges[pos].From == ed.From {
				e.edges[pos].Weight = ed.Weight
			}
		}
		headSet[ed.To] = struct{}{}
	}
	for _, ed := range b.Inserts {
		pos := int32(len(e.edges))
		e.edges = append(e.edges, ed)
		e.dead = append(e.dead, false)
		e.inIdx[ed.To] = append(e.inIdx[ed.To], pos)
		e.live++
		headSet[ed.To] = struct{}{}
	}

	heads := sortedHeads(headSet)
	if e.policy != nil {
		e.reweighHeads(heads)
	}

	e.version++
	entry := logEntry{
		toVersion: e.version,
		nBefore:   nBefore,
		nAfter:    e.n,
		heads:     heads,
		mutations: b.Mutations(),
	}
	e.log = append(e.log, entry)
	e.logMuts += entry.mutations
	for len(e.log) > 1 && e.logMuts > e.opts.MaxLogMutations {
		e.logMuts -= e.log[0].mutations
		e.log = e.log[1:]
	}

	e.snap = nil
	if float64(e.nDead) > e.opts.CompactFraction*float64(e.live) {
		e.compact()
	}
	return e.version, nil
}

// DeltaSince merges every batch applied after version v into one Delta.
// ok is false when v is ahead of the current version or the log no longer
// reaches back to v — the caller must then rebuild its derived state from
// a fresh snapshot.
func (e *Graph) DeltaSince(v uint64) (Delta, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.deltaBetweenLocked(v, e.version)
}

// DeltaBetween merges the batches that moved the graph from version from
// to version to. Consumers pinned to an older snapshot (a query that
// resolved its snapshot before a concurrent update landed) use it to
// repair derived state exactly to that snapshot's version rather than to
// whatever version the graph has reached since. ok is false when from >
// to, to is in the future, or the log no longer covers the range.
func (e *Graph) DeltaBetween(from, to uint64) (Delta, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.deltaBetweenLocked(from, to)
}

func (e *Graph) deltaBetweenLocked(from, to uint64) (Delta, bool) {
	if from > to || to > e.version {
		return Delta{}, false
	}
	if from == to {
		if n, ok := e.nodesAtLocked(from); ok {
			return Delta{NBefore: n, NAfter: n}, true
		}
		return Delta{}, false
	}
	// Log entries are contiguous: the earliest retained produced version
	// version-len(log)+1.
	earliest := e.version - uint64(len(e.log)) + 1
	if from+1 < earliest {
		return Delta{}, false
	}
	headSet := make(map[uint32]struct{})
	var d Delta
	first := true
	for _, entry := range e.log {
		if entry.toVersion <= from || entry.toVersion > to {
			continue
		}
		if first {
			d.NBefore = entry.nBefore
			first = false
		}
		d.NAfter = entry.nAfter
		for _, h := range entry.heads {
			headSet[h] = struct{}{}
		}
	}
	d.Heads = sortedHeads(headSet)
	return d, true
}

// nodesAtLocked returns the node count as of version v, if the log still
// records it. Caller holds mu.
func (e *Graph) nodesAtLocked(v uint64) (int, bool) {
	if v == e.version {
		return e.n, true
	}
	for _, entry := range e.log {
		if entry.toVersion == v {
			return entry.nAfter, true
		}
		if entry.toVersion == v+1 {
			return entry.nBefore, true
		}
	}
	return 0, false
}

// liveCount returns the number of live occurrences of k. Caller holds mu.
func (e *Graph) liveCount(k EdgeKey) int {
	c := 0
	for _, pos := range e.inIdx[k.To] {
		if e.edges[pos].From == k.From {
			c++
		}
	}
	return c
}

// deleteLatest tombstones the most recently inserted live occurrence of k
// and unlinks it from the in-edge index. Caller holds mu and has
// validated existence.
func (e *Graph) deleteLatest(k EdgeKey) {
	lst := e.inIdx[k.To]
	for i := len(lst) - 1; i >= 0; i-- {
		pos := lst[i]
		if e.edges[pos].From == k.From {
			e.dead[pos] = true
			e.inIdx[k.To] = append(lst[:i], lst[i+1:]...)
			e.live--
			e.nDead++
			return
		}
	}
	panic("evolve: deleteLatest of validated edge found nothing")
}

// reweighHeads re-derives the in-weights of each touched head through the
// policy. Caller holds mu.
func (e *Graph) reweighHeads(heads []uint32) {
	var src []uint32
	var w []float32
	for _, v := range heads {
		positions := e.inIdx[v]
		if len(positions) == 0 {
			continue
		}
		src = src[:0]
		w = w[:0]
		for _, pos := range positions {
			src = append(src, e.edges[pos].From)
			w = append(w, e.edges[pos].Weight)
		}
		e.policy.WeightIn(v, src, w)
		for i, pos := range positions {
			x := w[i]
			if !(x >= 0 && x <= 1) {
				// A policy returning an invalid weight is a programmer
				// error, same contract as graph.SetInWeights.
				panic(fmt.Sprintf("evolve: policy weight %v for head %d outside [0, 1]", x, v))
			}
			e.edges[pos].Weight = x
		}
	}
}

// compact physically removes tombstoned entries and rebuilds the index.
// Versions, the delta log, and the cached snapshot are unaffected — this
// is storage hygiene, not a logical change. Caller holds mu.
func (e *Graph) compact() {
	kept := make([]graph.Edge, 0, e.live)
	for i, ed := range e.edges {
		if !e.dead[i] {
			kept = append(kept, ed)
		}
	}
	e.edges = kept
	e.dead = make([]bool, len(kept))
	e.inIdx = make(map[uint32][]int32, len(e.inIdx))
	for i, ed := range kept {
		e.inIdx[ed.To] = append(e.inIdx[ed.To], int32(i))
	}
	e.nDead = 0
}

// sortedHeads flattens a head set into a sorted slice.
func sortedHeads(set map[uint32]struct{}) []uint32 {
	if len(set) == 0 {
		return nil
	}
	heads := make([]uint32, 0, len(set))
	for h := range set {
		heads = append(heads, h)
	}
	// Insertion sort: head sets are small relative to batch sizes and the
	// determinism of downstream iteration is what matters.
	for i := 1; i < len(heads); i++ {
		for j := i; j > 0 && heads[j] < heads[j-1]; j-- {
			heads[j], heads[j-1] = heads[j-1], heads[j]
		}
	}
	return heads
}
