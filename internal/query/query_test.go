package query

import (
	"errors"
	"testing"

	"repro/internal/rng"
)

func TestCompileZeroSpec(t *testing.T) {
	for _, s := range []*Spec{nil, {}} {
		c, err := s.Compile(10)
		if err != nil {
			t.Fatalf("zero spec: %v", err)
		}
		if !c.Sample.Default() || c.Mass != 10 || c.Constrained() || c.Hash != 0 {
			t.Fatalf("zero spec compiled to %+v", c)
		}
	}
}

func TestCompileUniformWeightsLowerToUniformSampler(t *testing.T) {
	w := []float64{2, 2, 2, 2}
	c, err := (&Spec{Weights: w}).Compile(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sample.Roots != nil || c.Weighted {
		t.Fatalf("uniform profile should lower to the uniform sampler: %+v", c)
	}
	if c.Mass != 8 {
		t.Fatalf("mass = %v, want 8", c.Mass)
	}
	if c.Hash != 0 {
		t.Fatalf("uniform profile must keep the default hash, got %d", c.Hash)
	}
}

func TestCompileWeightedRoots(t *testing.T) {
	// All mass on node 2: every root draw must return 2.
	c, err := (&Spec{Weights: []float64{0, 0, 5, 0}}).Compile(4)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Weighted || c.Sample.Roots == nil || c.Mass != 5 {
		t.Fatalf("compiled: %+v", c)
	}
	r := rng.New(1)
	for i := 0; i < 50; i++ {
		if got := c.Sample.Roots.SampleRoot(r); got != 2 {
			t.Fatalf("root %d, want 2", got)
		}
	}
}

func TestCompileRejects(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		n    int
	}{
		{"weights length mismatch", Spec{Weights: []float64{1, 2}}, 3},
		{"negative weight", Spec{Weights: []float64{1, -1, 1}}, 3},
		{"all-zero weights", Spec{Weights: []float64{0, 0, 0}}, 3},
		{"costs without budget", Spec{Costs: []float64{1, 1, 1}}, 3},
		{"costs length mismatch", Spec{Budget: 1, Costs: []float64{1}}, 3},
		{"non-positive cost", Spec{Budget: 1, Costs: []float64{1, 0, 1}}, 3},
		{"negative budget", Spec{Budget: -2}, 3},
		{"negative max hops", Spec{MaxHops: -1}, 3},
		{"exclude out of range", Spec{Exclude: []uint32{3}}, 3},
		{"force out of range", Spec{Force: []uint32{9}}, 3},
		{"force and exclude overlap", Spec{Force: []uint32{1}, Exclude: []uint32{1}}, 3},
		{"duplicate force", Spec{Force: []uint32{1, 1}}, 3},
		{"all nodes excluded", Spec{Exclude: []uint32{0, 1, 2}}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.spec.Compile(tc.n); !errors.Is(err, ErrBadSpec) {
				t.Fatalf("err = %v, want ErrBadSpec", err)
			}
		})
	}
}

func TestProfileHashKeying(t *testing.T) {
	w1 := []float64{1, 2, 3}
	w2 := []float64{1, 2, 4}
	c1, _ := (&Spec{Weights: w1}).Compile(3)
	c1b, _ := (&Spec{Weights: append([]float64(nil), w1...)}).Compile(3)
	c2, _ := (&Spec{Weights: w2}).Compile(3)
	if c1.Hash == 0 || c1.Hash != c1b.Hash {
		t.Fatalf("same profile must share a hash: %d vs %d", c1.Hash, c1b.Hash)
	}
	if c1.Hash == c2.Hash {
		t.Fatalf("different profiles share hash %d", c1.Hash)
	}
	// Selection-only constraints must not re-key the collection.
	c3, _ := (&Spec{Weights: w1, Exclude: []uint32{0}, Force: []uint32{1}, Budget: 2}).Compile(3)
	if c3.Hash != c1.Hash {
		t.Fatalf("selection constraints re-keyed the profile: %d vs %d", c3.Hash, c1.Hash)
	}
	// The horizon does re-key.
	c4, _ := (&Spec{Weights: w1, MaxHops: 2}).Compile(3)
	if c4.Hash == c1.Hash {
		t.Fatalf("horizon failed to re-key the profile")
	}
	h2, _ := (&Spec{MaxHops: 2}).Compile(3)
	h3, _ := (&Spec{MaxHops: 3}).Compile(3)
	if h2.Hash == 0 || h3.Hash == 0 || h2.Hash == h3.Hash {
		t.Fatalf("horizon-only hashes: %d vs %d", h2.Hash, h3.Hash)
	}
}

func TestSpecZero(t *testing.T) {
	if !(&Spec{}).Zero() || !(*Spec)(nil).Zero() {
		t.Fatal("zero spec not detected")
	}
	if (&Spec{MaxHops: 1}).Zero() || (&Spec{Exclude: []uint32{0}}).Zero() {
		t.Fatal("non-zero spec detected as zero")
	}
}
