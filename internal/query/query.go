// Package query is the constrained-query layer of the influence
// maximization system: it turns the one algorithm the pipeline implements
// (RIS sampling + greedy coverage) into a family of serveable scenarios.
//
// A Spec declares, per query, any combination of
//
//   - a targeted audience: per-node weights, with RR-set roots drawn
//     ∝ weight (Borgs et al.'s root-sampling argument holds for any root
//     distribution; the estimator rescales by the total weight W);
//   - a seeding budget: per-node costs and a budget B, solved by the
//     cost-aware lazy greedy in internal/maxcover;
//   - seed constraints: forced-include warm starts and excluded nodes,
//     which reuse existing unweighted RR collections unchanged;
//   - a diffusion deadline: a MaxHops horizon on RR generation
//     (Chen et al.'s time-critical IM as a cap on the reverse walk).
//
// Compile validates a Spec against a graph size and lowers it into the
// pieces each layer consumes: a diffusion.SampleConfig for the samplers, a
// maxcover.Constraints for node selection, the audience mass W that scales
// the estimator, and a profile hash that keys cached RR collections — only
// the parts of a Spec that change sampling (weights, horizon) re-key a
// collection; selection-only constraints (costs, budget, force, exclude)
// deliberately hash to the same profile so warm sketches keep serving
// (DESIGN.md §9.3).
package query

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/maxcover"
	"repro/internal/rng"
)

// ErrBadSpec wraps every Spec validation failure; servers map it to a 4xx
// status and count it as a constraint rejection.
var ErrBadSpec = errors.New("query: invalid constraint spec")

// Spec is one constrained influence-maximization scenario. The zero value
// is the paper's default query (uniform audience, free seeds, unlimited
// time) and compiles to a Compiled that is bit-identical to running
// without a spec at all.
type Spec struct {
	// Weights[v] is the audience weight of node v — how much activating v
	// is worth. nil means uniform. When non-nil, the length must equal the
	// node count at compile time, entries must be finite and non-negative,
	// and at least one must be positive. A uniform positive vector is
	// detected and lowered to the uniform sampler (so it reproduces
	// unweighted answers exactly, with estimates scaled by the mass).
	Weights []float64
	// Costs[v] is the seeding cost of node v; nil means unit costs. Used
	// only when Budget > 0, and then every entry must be positive and
	// finite.
	Costs []float64
	// Budget, when positive, bounds the total cost of the selected seeds
	// (beyond forced ones). K remains a cap on the number of picks.
	Budget float64
	// Force are warm-start seeds assumed already activated: they are
	// returned at the front of the seed set, their RR coverage is
	// pre-subtracted, and they consume neither K nor Budget.
	Force []uint32
	// Exclude are nodes that must not be picked as seeds. They still
	// propagate influence and count toward the audience: exclusion
	// constrains seeding, not diffusion.
	Exclude []uint32
	// MaxHops, when positive, bounds the diffusion horizon: only nodes
	// reachable within MaxHops propagation rounds count as activated.
	MaxHops int
}

// Zero reports whether the spec requests the default scenario. A negative
// MaxHops is not zero: it flows into Compile, which rejects it.
func (s *Spec) Zero() bool {
	return s == nil || (s.Weights == nil && s.Costs == nil && s.Budget == 0 &&
		len(s.Force) == 0 && len(s.Exclude) == 0 && s.MaxHops == 0)
}

// Compiled is a Spec lowered against a concrete node count, ready for the
// sampling and selection layers.
type Compiled struct {
	// Sample configures RR generation (root distribution, horizon). Zero
	// for specs that do not change sampling.
	Sample diffusion.SampleConfig
	// Mass is the total audience weight W — the scale of every spread
	// estimate (W·coverage-fraction estimates the weighted influence).
	// For uniform audiences it is exactly float64(n), preserving the
	// unweighted estimator bit for bit.
	Mass float64
	// Cover is the node-selection constraint set; K is filled in by the
	// caller (tim) from its own options.
	Cover maxcover.Constraints
	// Weighted reports a non-uniform audience (Sample.Roots != nil).
	Weighted bool
	// N is the node count the spec was compiled against.
	N int
	// Hash is the sampling-profile hash: two compiled specs share it
	// exactly when their RR collections are interchangeable — when the
	// parts that change *sampling* agree. Non-uniform weights (with the
	// node count they were compiled at) and MaxHops enter the hash;
	// costs, budget, force, and exclude do not: those only change
	// selection over the same sets, which is precisely why
	// exclusion-style queries keep hitting warm unweighted sketches.
	// The default profile hashes to 0, so callers can keep a legacy
	// cache key for unconstrained traffic.
	Hash uint64
}

// Constrained reports whether node selection needs the constrained
// (lazy-greedy) path rather than the unconstrained bucket greedy.
func (c *Compiled) Constrained() bool {
	return c.Cover.Budget > 0 || len(c.Cover.Force) > 0 || len(c.Cover.Exclude) > 0
}

// Compile validates the spec against an n-node graph and lowers it. A nil
// spec compiles like the zero Spec.
func (s *Spec) Compile(n int) (*Compiled, error) {
	if s == nil {
		s = &Spec{}
	}
	if n <= 0 {
		return nil, fmt.Errorf("%w: graph has no nodes", ErrBadSpec)
	}
	c := &Compiled{Mass: float64(n), N: n}

	if s.Weights != nil {
		if len(s.Weights) != n {
			return nil, fmt.Errorf("%w: %d weights for %d nodes", ErrBadSpec, len(s.Weights), n)
		}
		var total float64
		uniform := true
		for v, w := range s.Weights {
			if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
				return nil, fmt.Errorf("%w: weight[%d]=%v must be finite and non-negative", ErrBadSpec, v, w)
			}
			total += w
			uniform = uniform && w == s.Weights[0]
		}
		if total <= 0 {
			return nil, fmt.Errorf("%w: audience weights sum to zero", ErrBadSpec)
		}
		c.Mass = total
		if !uniform {
			c.Sample.Roots = newWeightedRoots(s.Weights)
			c.Weighted = true
		}
		// A uniform positive profile is the default root distribution:
		// lower it to the uniform sampler so the collection (and hence the
		// seeds) match an unweighted query exactly; only Mass differs.
	}

	if s.MaxHops < 0 {
		return nil, fmt.Errorf("%w: max_hops=%d must be non-negative", ErrBadSpec, s.MaxHops)
	}
	c.Sample.MaxHops = s.MaxHops

	if s.Budget < 0 || math.IsNaN(s.Budget) || math.IsInf(s.Budget, 0) {
		return nil, fmt.Errorf("%w: budget=%v must be a non-negative finite number", ErrBadSpec, s.Budget)
	}
	if s.Budget > 0 {
		c.Cover.Budget = s.Budget
		if s.Costs != nil {
			if len(s.Costs) != n {
				return nil, fmt.Errorf("%w: %d costs for %d nodes", ErrBadSpec, len(s.Costs), n)
			}
			for v, w := range s.Costs {
				if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
					return nil, fmt.Errorf("%w: cost[%d]=%v must be finite and positive", ErrBadSpec, v, w)
				}
			}
			c.Cover.Costs = s.Costs
		}
	} else if s.Costs != nil {
		return nil, fmt.Errorf("%w: costs without a budget have no effect", ErrBadSpec)
	}

	excluded := make(map[uint32]bool, len(s.Exclude))
	for _, v := range s.Exclude {
		if int(v) >= n {
			return nil, fmt.Errorf("%w: excluded node %d outside [0, %d)", ErrBadSpec, v, n)
		}
		excluded[v] = true
	}
	c.Cover.Exclude = s.Exclude
	seen := make(map[uint32]bool, len(s.Force))
	for _, v := range s.Force {
		if int(v) >= n {
			return nil, fmt.Errorf("%w: forced seed %d outside [0, %d)", ErrBadSpec, v, n)
		}
		if excluded[v] {
			return nil, fmt.Errorf("%w: node %d both forced and excluded", ErrBadSpec, v)
		}
		if seen[v] {
			return nil, fmt.Errorf("%w: forced seed %d repeated", ErrBadSpec, v)
		}
		seen[v] = true
	}
	c.Cover.Force = s.Force
	if len(excluded) >= n {
		return nil, fmt.Errorf("%w: every node is excluded", ErrBadSpec)
	}
	c.Hash = profileHash(c, s.Weights)
	return c, nil
}

// profileHash computes Compiled.Hash (see that field's doc) with FNV-1a
// over the horizon and, for non-uniform audiences, (n, weight bits).
func profileHash(c *Compiled, weights []float64) uint64 {
	if !c.Weighted && c.Sample.MaxHops <= 0 {
		return 0
	}
	h := uint64(14695981039346656037) // FNV-1a offset basis
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	mix(uint64(c.Sample.MaxHops))
	if c.Weighted {
		mix(uint64(c.N))
		for _, w := range weights {
			mix(math.Float64bits(w))
		}
	}
	if h == 0 {
		h = 1 // reserve 0 for the default profile
	}
	return h
}

// weightedRoots draws RR-set roots ∝ a fixed weight profile via Walker's
// alias table. It is a pure function of the profile — never of the graph —
// which is the diffusion.RootSampler stability contract that lets
// evolve.Repair skip the root-instability check for weighted collections.
type weightedRoots struct {
	table *gen.AliasTable
}

func newWeightedRoots(weights []float64) *weightedRoots {
	return &weightedRoots{table: gen.NewAliasTable(weights)}
}

// SampleRoot implements diffusion.RootSampler.
func (w *weightedRoots) SampleRoot(r *rng.Rand) uint32 {
	return uint32(w.table.Sample(r))
}
