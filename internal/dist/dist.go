// Package dist implements the paper's §8 future-work direction: TIM/TIM+
// as a distributed algorithm, run as a single-process simulation of a
// cluster of P machines.
//
// The graph is vertex-partitioned over the simulated machines. RR-set
// sampling becomes a distributed reverse BFS whose frontier hops between
// shards as accounted messages, and node selection becomes a distributed
// greedy cover driven by a coordinator. The simulation is faithful about
// the two quantities a real deployment trades: per-machine graph memory
// (which falls like 1/P) and network traffic (which grows with P).
//
// Determinism contract: every random decision is keyed by
// (batch seed, RR id, node) rather than by machine, so the selected seeds
// and θ are invariant in the shard count. That is what makes the
// simulation trustworthy — distributing the computation changes where
// work happens, never what is computed.
package dist

import (
	"errors"
	"fmt"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/tim"
)

// PartitionKind selects how nodes map to simulated machines.
type PartitionKind int

const (
	// Hash partitions nodes by id modulo the shard count (default).
	Hash PartitionKind = iota
	// Block partitions contiguous id ranges of near-equal size.
	Block
)

// String implements fmt.Stringer.
func (p PartitionKind) String() string {
	switch p {
	case Hash:
		return "hash"
	case Block:
		return "block"
	}
	return fmt.Sprintf("PartitionKind(%d)", int(p))
}

// Options configures a distributed Maximize run. K is required; the other
// fields default like tim.Options (ε=0.1, ℓ=1, TIM+), with Shards
// defaulting to 1 and Partition to Hash.
type Options struct {
	// K is the seed-set size (required, 1 ≤ K ≤ n).
	K int
	// Shards is the number of simulated machines (default 1).
	Shards int
	// Partition selects the node-to-machine mapping (default Hash).
	Partition PartitionKind
	// Epsilon is the approximation slack ε in (0, 1]. Default 0.1.
	Epsilon float64
	// Ell controls the failure probability n^−ℓ. Default 1.
	Ell float64
	// Variant selects TIM+ (default) or TIM.
	Variant tim.Algorithm
	// EpsPrime is Algorithm 3's ε′; zero selects the paper's heuristic.
	EpsPrime float64
	// Seed drives all randomness. Results are deterministic in Seed and
	// independent of Shards and Partition.
	Seed uint64
}

// NetStats aggregates the simulated network traffic of a run.
type NetStats struct {
	// Messages is the total number of messages exchanged.
	Messages int64
	// Bytes is the total payload volume.
	Bytes int64
	// ExpandRequests counts frontier round trips of the distributed
	// reverse BFS: one per retained cross-shard edge.
	ExpandRequests int64
	// CoverRounds counts coordinator rounds of the distributed greedy
	// cover (one per selected seed).
	CoverRounds int64
}

// add merges o into s.
func (s *NetStats) add(o NetStats) {
	s.Messages += o.Messages
	s.Bytes += o.Bytes
	s.ExpandRequests += o.ExpandRequests
	s.CoverRounds += o.CoverRounds
}

// Result is the output of a distributed run: the same core diagnostics as
// tim.Result plus per-shard memory footprints and network traffic.
type Result struct {
	// Seeds is the selected seed set, in greedy pick order.
	Seeds []uint32
	// Shards is the number of simulated machines that ran.
	Shards int

	// KptStar and KptPlus are the Algorithm 2 / Algorithm 3 bounds.
	KptStar float64
	KptPlus float64
	// Theta is the number of RR sets sampled by node selection.
	Theta int64
	// CoverageFraction is the fraction of the θ RR sets covered by Seeds.
	CoverageFraction float64
	// SpreadEstimate is n·CoverageFraction (Corollary 1).
	SpreadEstimate float64

	// ShardMemoryBytes[i] is the adjacency bytes machine i holds — the
	// quantity distribution exists to shrink.
	ShardMemoryBytes []int64
	// Net is the traffic paid for that shrinkage.
	Net NetStats
}

// ErrTriggeringUnsupported is returned for custom triggering models:
// sampling a triggering set requires whole-graph access at the owning
// node, which a vertex-partitioned machine does not have for remote
// in-neighbors. IC and LT have local per-edge factorizations and are
// supported.
var ErrTriggeringUnsupported = errors.New("dist: custom triggering models are not supported by the distributed runner (use IC or LT)")

// ErrBadOptions wraps option-validation failures.
var ErrBadOptions = errors.New("dist: invalid options")

func (o *Options) validate(n int) error {
	if n <= 0 {
		return fmt.Errorf("%w: graph has no nodes", ErrBadOptions)
	}
	if o.K <= 0 || o.K > n {
		return fmt.Errorf("%w: K=%d outside [1, %d]", ErrBadOptions, o.K, n)
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.1
	}
	if o.Epsilon <= 0 || o.Epsilon > 1 {
		return fmt.Errorf("%w: Epsilon=%v outside (0, 1]", ErrBadOptions, o.Epsilon)
	}
	if o.Ell == 0 {
		o.Ell = 1
	}
	if o.Ell <= 0 {
		return fmt.Errorf("%w: Ell=%v must be positive", ErrBadOptions, o.Ell)
	}
	if o.Partition != Hash && o.Partition != Block {
		return fmt.Errorf("%w: unknown partition kind %d", ErrBadOptions, int(o.Partition))
	}
	return nil
}

// partitioner maps nodes to shards.
type partitioner struct {
	kind      PartitionKind
	shards    uint32
	blockSize uint32
}

func newPartitioner(kind PartitionKind, n, shards int) partitioner {
	p := partitioner{kind: kind, shards: uint32(shards)}
	if kind == Block {
		p.blockSize = uint32((n + shards - 1) / shards)
		if p.blockSize == 0 {
			p.blockSize = 1
		}
	}
	return p
}

func (p partitioner) shardOf(v uint32) uint32 {
	if p.kind == Block {
		s := v / p.blockSize
		if s >= p.shards {
			s = p.shards - 1
		}
		return s
	}
	return v % p.shards
}

// shardMemory returns the adjacency bytes each machine holds: its nodes'
// CSR offsets plus both directions of their incident edge arrays, using
// the same per-element costs as graph.MemoryFootprint.
func shardMemory(g *graph.Graph, p partitioner, shards int) []int64 {
	mem := make([]int64, shards)
	for v := uint32(0); int(v) < g.N(); v++ {
		s := p.shardOf(v)
		out := int64(g.OutDegree(v))
		in := int64(g.InDegree(v))
		// Two offset entries (8 bytes each), 8 bytes per out-edge
		// (target + weight), 16 per in-edge (source + weight + inToOut).
		mem[s] += 16 + out*8 + in*16
	}
	return mem
}

// dedup for message sizing: a frontier hop ships (rr id, node id) and the
// reply ships the retained neighbors; the constants below are the
// per-message envelope and per-node payload in bytes.
const (
	msgEnvelopeBytes = 12 // rr id (8) + node id (4)
	nodeIDBytes      = 4
)

// modelSupported reports whether the model has a local per-edge
// factorization usable by the distributed sampler.
func modelSupported(m diffusion.Model) bool {
	switch m.Kind() {
	case diffusion.IC, diffusion.LT:
		return true
	}
	return false
}
