package dist

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/maxcover"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/tim"
)

// splitmix64 is the canonical splitmix64 step, duplicated here to build
// the (batch, RR id, node) randomness keys without exporting it from rng.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// combine hashes the parts into one 64-bit key. Randomness keyed on
// combine(batch, rr, node) is what makes runs shard-count invariant: the
// coins a node flips do not depend on which machine flips them.
func combine(parts ...uint64) uint64 {
	var x uint64 = 0x2545f4914f6cdd1d
	for _, p := range parts {
		x ^= p
		x = splitmix64(&x)
	}
	return x
}

// sampler generates RR sets with per-(batch, rr, node) keyed randomness
// and accounts the cross-shard traffic the reverse BFS would generate on
// a real cluster. One sampler per worker goroutine.
type sampler struct {
	g     *graph.Graph
	kind  diffusion.Kind
	part  partitioner
	r     rng.Rand // reseeded per decision point; no stream state carried
	mark  []uint32
	epoch uint32
	net   NetStats
}

func newSampler(g *graph.Graph, kind diffusion.Kind, part partitioner) *sampler {
	return &sampler{g: g, kind: kind, part: part, mark: make([]uint32, g.N())}
}

func (s *sampler) nextEpoch() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.epoch = 1
	}
}

// sample generates RR set rrID of the batch keyed by batchSeed, appends
// its members to dst, and returns the extended slice and the set width.
func (s *sampler) sample(batchSeed, rrID uint64, dst []uint32) ([]uint32, int64) {
	s.r.Seed(combine(batchSeed, rrID))
	root := uint32(s.r.Uint64n(uint64(s.g.N())))
	start := len(dst)
	var width int64
	if s.kind == diffusion.LT {
		dst, width = s.sampleLT(batchSeed, rrID, root, dst)
	} else {
		dst, width = s.sampleIC(batchSeed, rrID, root, dst)
	}
	// The completed set ships from the root's machine to the coordinator
	// (machine 0) for the cover phase.
	if s.part.shardOf(root) != 0 {
		s.net.Messages++
		s.net.Bytes += msgEnvelopeBytes + int64(len(dst)-start)*nodeIDBytes
	}
	return dst, width
}

// expand accounts one retained BFS edge v→u: if u lives on another
// machine, the frontier hops there as a request/reply round trip.
func (s *sampler) expand(v, u uint32) {
	if sv, su := s.part.shardOf(v), s.part.shardOf(u); sv != su {
		s.net.ExpandRequests++
		s.net.Messages += 2
		s.net.Bytes += 2*msgEnvelopeBytes + nodeIDBytes
	}
}

func (s *sampler) sampleIC(batchSeed, rrID uint64, root uint32, dst []uint32) ([]uint32, int64) {
	s.nextEpoch()
	g, mark, epoch := s.g, s.mark, s.epoch
	start := len(dst)
	mark[root] = epoch
	dst = append(dst, root)
	var width int64
	for head := start; head < len(dst); head++ {
		v := dst[head]
		src, w := g.InNeighbors(v)
		width += int64(len(src))
		s.r.Seed(combine(batchSeed, rrID, uint64(v)))
		for i := range src {
			u := src[i]
			if mark[u] == epoch {
				// The coin is still flipped (the key stream is per
				// node, positional), but a visited node is not re-added.
				s.r.Bernoulli32(w[i])
				continue
			}
			if s.r.Bernoulli32(w[i]) {
				mark[u] = epoch
				dst = append(dst, u)
				s.expand(v, u)
			}
		}
	}
	return dst, width
}

func (s *sampler) sampleLT(batchSeed, rrID uint64, root uint32, dst []uint32) ([]uint32, int64) {
	s.nextEpoch()
	g, mark, epoch := s.g, s.mark, s.epoch
	mark[root] = epoch
	dst = append(dst, root)
	var width int64
	v := root
	for {
		src, w := g.InNeighbors(v)
		width += int64(len(src))
		if len(src) == 0 {
			return dst, width
		}
		s.r.Seed(combine(batchSeed, rrID, uint64(v)))
		x := s.r.Float32()
		var acc float32
		next := uint32(0)
		found := false
		for i := range src {
			acc += w[i]
			if x < acc {
				next = src[i]
				found = true
				break
			}
		}
		if !found || mark[next] == epoch {
			return dst, width
		}
		mark[next] = epoch
		dst = append(dst, next)
		s.expand(v, next)
		v = next
	}
}

// sampleBatch generates count RR sets in parallel. The result and the
// traffic totals are deterministic for fixed (batchSeed, count) and
// independent of worker count and shard count (workers own contiguous
// rr-id ranges merged in order; traffic is a sum of per-set terms).
func sampleBatch(g *graph.Graph, kind diffusion.Kind, part partitioner, batchSeed uint64, count int64) (*diffusion.RRCollection, NetStats) {
	out := &diffusion.RRCollection{Off: []int64{0}}
	var net NetStats
	if count <= 0 || g.N() == 0 {
		return out, net
	}
	workers := runtime.GOMAXPROCS(0)
	if int64(workers) > count {
		workers = int(count)
	}
	parts := make([]*diffusion.RRCollection, workers)
	nets := make([]NetStats, workers)
	var wg sync.WaitGroup
	lo := int64(0)
	for w := 0; w < workers; w++ {
		quota := count / int64(workers)
		if int64(w) < count%int64(workers) {
			quota++
		}
		hi := lo + quota
		wg.Add(1)
		go func(w int, lo, hi int64) {
			defer wg.Done()
			s := newSampler(g, kind, part)
			col := &diffusion.RRCollection{Off: make([]int64, 1, hi-lo+1)}
			var buf []uint32
			for id := lo; id < hi; id++ {
				var width int64
				buf, width = s.sample(batchSeed, uint64(id), buf[:0])
				col.Append(buf, width)
			}
			parts[w] = col
			nets[w] = s.net
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
	for w := range parts {
		out.Merge(parts[w])
		net.add(nets[w])
	}
	return out, net
}

// Maximize runs TIM or TIM+ (per opts.Variant) on a cluster of
// opts.Shards simulated machines. It computes the same two-phase pipeline
// as tim.Maximize — parameter estimation, optional refinement, node
// selection — with the distributed sampler and cover, so the guarantees
// of Theorems 1–3 carry over. The output for a fixed Seed is independent
// of the shard count and partitioning.
func Maximize(g *graph.Graph, model diffusion.Model, opts Options) (*Result, error) {
	if !modelSupported(model) {
		return nil, ErrTriggeringUnsupported
	}
	n := g.N()
	if err := opts.validate(n); err != nil {
		return nil, err
	}
	if opts.Variant != tim.TIM && opts.Variant != tim.TIMPlus {
		return nil, ErrBadOptions
	}
	part := newPartitioner(opts.Partition, n, opts.Shards)
	res := &Result{
		Shards:           opts.Shards,
		ShardMemoryBytes: shardMemory(g, part, opts.Shards),
	}
	kind := model.Kind()
	ell := tim.EffectiveEll(opts.Ell, opts.Variant, n)

	// Phase 1: parameter estimation (Algorithm 2) on the cluster. Batch b
	// is keyed by combine(Seed, b): machine-independent.
	batch := uint64(0)
	nextBatch := func() uint64 { batch++; return combine(opts.Seed, batch) }
	m := g.M()
	iterations := stats.KptIterations(n)
	kptStar := 1.0
	var lastBatch *diffusion.RRCollection
	for i := 1; i <= iterations; i++ {
		ci := stats.SampleScheduleCi(n, ell, i)
		col, net := sampleBatch(g, kind, part, nextBatch(), ci)
		res.Net.add(net)
		lastBatch = col
		sum := tim.KappaSum(g, col, opts.K, m)
		if avg := sum / float64(ci); avg > math.Pow(2, -float64(i)) {
			kptStar = float64(n) * sum / (2 * float64(ci))
			break
		}
	}
	res.KptStar = kptStar
	res.KptPlus = kptStar

	// Intermediate step: refinement (Algorithm 3, TIM+ only). The greedy
	// cover over R′ runs as a distributed cover (accounted below with the
	// main selection); the fresh-batch estimate is distributed sampling.
	if opts.Variant == tim.TIMPlus && lastBatch != nil && kptStar > 0 {
		epsPrime := opts.EpsPrime
		if epsPrime == 0 {
			epsPrime = stats.EpsPrime(opts.K, opts.Epsilon, ell)
		}
		cover := maxcover.Greedy(n, lastBatch, opts.K)
		res.Net.add(coverTraffic(opts.K, opts.Shards))
		lambdaPrime := stats.LambdaPrime(n, ell, epsPrime)
		thetaPrime := int64(math.Ceil(lambdaPrime / kptStar))
		if thetaPrime < 1 {
			thetaPrime = 1
		}
		fresh, net := sampleBatch(g, kind, part, nextBatch(), thetaPrime)
		res.Net.add(net)
		covered := maxcover.CountCovered(n, fresh, cover.Seeds)
		f := float64(covered) / float64(thetaPrime)
		if kptPrime := f * float64(n) / (1 + epsPrime); kptPrime > kptStar {
			res.KptPlus = kptPrime
		}
	}

	// Phase 2: node selection (Algorithm 1) with θ = λ/KPT⁺.
	lambda := stats.Lambda(n, opts.K, opts.Epsilon, ell)
	kpt := res.KptPlus
	if kpt < 1 {
		kpt = 1
	}
	theta := int64(math.Ceil(lambda / kpt))
	if theta < 1 {
		theta = 1
	}
	col, net := sampleBatch(g, kind, part, nextBatch(), theta)
	res.Net.add(net)
	cover := maxcover.Greedy(n, col, opts.K)
	res.Net.add(coverTraffic(opts.K, opts.Shards))

	res.Seeds = cover.Seeds
	res.Theta = theta
	res.CoverageFraction = float64(cover.Covered) / float64(theta)
	res.SpreadEstimate = res.CoverageFraction * float64(n)
	return res, nil
}

// coverTraffic is the traffic of a k-round distributed greedy cover: each
// round every non-coordinator machine reports its local best candidate
// (node id + marginal count) and the coordinator broadcasts the pick.
func coverTraffic(k, shards int) NetStats {
	var net NetStats
	if shards <= 1 {
		return net
	}
	p := int64(shards - 1)
	for round := 0; round < k; round++ {
		net.CoverRounds++
		net.Messages += 2 * p
		net.Bytes += p*(nodeIDBytes+8) + p*nodeIDBytes
	}
	return net
}
