package dist

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/tim"
)

func testGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := gen.BarabasiAlbert(n, 3, rng.New(11))
	graph.AssignWeightedCascade(g)
	return g
}

// TestShardInvariance is the determinism contract: seeds, θ, and KPT are
// identical for every shard count and partition kind.
func TestShardInvariance(t *testing.T) {
	g := testGraph(t, 250)
	var want *Result
	for _, kind := range []PartitionKind{Hash, Block} {
		for _, shards := range []int{1, 2, 3, 5, 8} {
			res, err := Maximize(g, diffusion.NewIC(), Options{
				K: 5, Shards: shards, Partition: kind, Epsilon: 0.3, Seed: 7,
			})
			if err != nil {
				t.Fatalf("%v/%d: %v", kind, shards, err)
			}
			if want == nil {
				want = res
				continue
			}
			if fmt.Sprint(res.Seeds) != fmt.Sprint(want.Seeds) {
				t.Fatalf("%v/%d: seeds %v != %v", kind, shards, res.Seeds, want.Seeds)
			}
			if res.Theta != want.Theta || res.KptPlus != want.KptPlus {
				t.Fatalf("%v/%d: theta/kpt drifted: %d/%g vs %d/%g",
					kind, shards, res.Theta, res.KptPlus, want.Theta, want.KptPlus)
			}
		}
	}
}

// TestMemoryTrafficTrade checks the quantities the simulation exists to
// expose: per-shard memory falls with P, traffic grows with P.
func TestMemoryTrafficTrade(t *testing.T) {
	g := testGraph(t, 300)
	maxShard := func(res *Result) int64 {
		var m int64
		for _, b := range res.ShardMemoryBytes {
			if b > m {
				m = b
			}
		}
		return m
	}
	var prevMem, prevBytes int64
	for i, shards := range []int{1, 2, 4, 8} {
		res, err := Maximize(g, diffusion.NewIC(), Options{K: 4, Shards: shards, Epsilon: 0.3, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.ShardMemoryBytes) != shards {
			t.Fatalf("want %d shard footprints, got %d", shards, len(res.ShardMemoryBytes))
		}
		var total int64
		for _, b := range res.ShardMemoryBytes {
			total += b
		}
		if total != maxShard(res)*1 && total <= 0 {
			t.Fatalf("implausible shard memory %v", res.ShardMemoryBytes)
		}
		if i > 0 {
			if m := maxShard(res); m >= prevMem {
				t.Fatalf("shards=%d: max shard memory %d did not shrink from %d", shards, m, prevMem)
			}
			if res.Net.Bytes <= prevBytes {
				t.Fatalf("shards=%d: traffic %d did not grow from %d", shards, res.Net.Bytes, prevBytes)
			}
		}
		prevMem = maxShard(res)
		prevBytes = res.Net.Bytes
	}
}

// TestLTModel runs the LT fast path end to end.
func TestLTModel(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, rng.New(5))
	graph.AssignRandomNormalizedLT(g, rng.New(6))
	r2, err := Maximize(g, diffusion.NewLT(), Options{K: 3, Shards: 2, Epsilon: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Maximize(g, diffusion.NewLT(), Options{K: 3, Shards: 4, Epsilon: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(r2.Seeds) != fmt.Sprint(r4.Seeds) {
		t.Fatalf("LT seeds vary with shards: %v vs %v", r2.Seeds, r4.Seeds)
	}
	if len(r2.Seeds) != 3 {
		t.Fatalf("want 3 seeds, got %v", r2.Seeds)
	}
}

// TestRejectsTriggering checks the documented limitation.
func TestRejectsTriggering(t *testing.T) {
	g := testGraph(t, 50)
	_, err := Maximize(g, diffusion.NewTriggering(diffusion.ICTrigger{}), Options{K: 2})
	if !errors.Is(err, ErrTriggeringUnsupported) {
		t.Fatalf("want ErrTriggeringUnsupported, got %v", err)
	}
}

// TestOptionValidation covers the error paths.
func TestOptionValidation(t *testing.T) {
	g := testGraph(t, 50)
	for name, opts := range map[string]Options{
		"zero-k":      {K: 0},
		"k-too-large": {K: 51},
		"bad-eps":     {K: 2, Epsilon: 1.5},
		"bad-ell":     {K: 2, Ell: -1},
		"bad-part":    {K: 2, Partition: PartitionKind(9)},
	} {
		if _, err := Maximize(g, diffusion.NewIC(), opts); !errors.Is(err, ErrBadOptions) {
			t.Errorf("%s: want ErrBadOptions, got %v", name, err)
		}
	}
	if _, err := Maximize(g, diffusion.NewIC(), Options{K: 2, Variant: tim.Algorithm(7)}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("bad variant: want ErrBadOptions, got %v", err)
	}
}

// TestPlainTIMVariant exercises the no-refinement path.
func TestPlainTIMVariant(t *testing.T) {
	g := testGraph(t, 150)
	res, err := Maximize(g, diffusion.NewIC(), Options{K: 3, Shards: 3, Epsilon: 0.4, Variant: tim.TIM, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.KptPlus != res.KptStar {
		t.Fatalf("plain TIM must not refine: kpt+=%g kpt*=%g", res.KptPlus, res.KptStar)
	}
	if len(res.Seeds) != 3 {
		t.Fatalf("want 3 seeds, got %v", res.Seeds)
	}
}
