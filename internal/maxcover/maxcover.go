// Package maxcover implements the greedy algorithm for maximum coverage
// used by the node-selection phase of TIM (Algorithm 1 lines 3-7), the
// refinement step (Algorithm 3 lines 2-6), and the second step of Borgs et
// al.'s RIS. Given a family of RR sets over nodes, it repeatedly picks the
// node covering the most still-uncovered sets — the classic
// (1 − 1/e)-approximation for maximum coverage.
//
// The implementation is the linear-time bucket variant: exact coverage
// counts are maintained under decrements (each set contributes to count
// updates exactly once, when it first becomes covered), and the current
// maximum is tracked with lazily repositioned count buckets. Total work is
// O(Σ|R| + n + k), matching the "linear-time implementation" the paper
// relies on for its complexity claims.
//
// The index-construction half of that work — occurrence counting and the
// CSR inverted-index fill — parallelizes over set shards with
// order-fixed reductions (parallel.go), as does CountCovered; results
// are byte-identical for every worker count. The large per-call arrays
// are recycled through process-wide pools (ScratchPoolStats).
package maxcover

import (
	"repro/internal/diffusion"
)

// Result reports one greedy selection.
type Result struct {
	// Seeds are the selected nodes in pick order. For constrained
	// selection the first Forced entries are the warm-start seeds.
	Seeds []uint32
	// Covered is the number of RR sets covered by Seeds.
	Covered int64
	// Marginals[i] is the number of newly covered sets when Seeds[i]
	// was picked; non-increasing by submodularity within each phase
	// (forced seeds are covered in caller order, not greedy order, so
	// their marginals may be arbitrary).
	Marginals []int64
	// Forced counts the warm-start seeds at the front of Seeds
	// (GreedyConstrained only; zero for Greedy).
	Forced int
	// Cost is the total cost of the non-forced picks under
	// Constraints.Costs (budget mode only; zero otherwise).
	Cost float64
}

// Greedy selects k nodes from [0, n) maximizing coverage of the sets in
// col. If k exceeds n it is clamped. When every set is covered before k
// picks, the remaining picks have zero marginal and are filled with the
// lowest-id unselected nodes (the paper's algorithms always return exactly
// k nodes). Index construction parallelizes over all cores; use
// GreedyWorkers to bound it.
func Greedy(n int, col *diffusion.RRCollection, k int) Result {
	return GreedyWorkers(n, col, k, 0)
}

// GreedyWorkers is Greedy with an explicit parallelism knob for the
// occurrence count and inverted-index build (workers ≤ 0 = all cores;
// 1 = the serial build). The result is byte-identical for every worker
// count — workers only changes how fast the index is built, never which
// nodes win (see parallel.go for the determinism argument).
func GreedyWorkers(n int, col *diffusion.RRCollection, k, workers int) Result {
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	res := Result{
		Seeds:     make([]uint32, 0, k),
		Marginals: make([]int64, 0, k),
	}
	if n == 0 || k == 0 {
		return res
	}
	idx, release := buildCoverIndex(n, col, workers)
	defer release()
	count, idxOff, idxSets := idx.count, idx.off, idx.sets
	numSets := col.Count()

	// Buckets by count with lazy repositioning. counts only decrease, so
	// a node found in a bucket above its true count is moved down.
	maxCount := int64(0)
	for _, c := range count {
		if c > maxCount {
			maxCount = c
		}
	}
	buckets := make([][]uint32, maxCount+1)
	for v := 0; v < n; v++ {
		c := count[v]
		buckets[c] = append(buckets[c], uint32(v))
	}
	coveredSet := boolPool.get(numSets)
	selected := boolPool.get(n)
	defer func() {
		boolPool.put(coveredSet)
		boolPool.put(selected)
	}()
	var covered int64

	cur := maxCount
	for len(res.Seeds) < k {
		// Find the true current maximum.
		var pick int64 = -1
		for cur > 0 {
			b := buckets[cur]
			if len(b) == 0 {
				cur--
				continue
			}
			v := b[len(b)-1]
			buckets[cur] = b[:len(b)-1]
			if selected[v] {
				continue
			}
			if count[v] != cur {
				// Stale: reposition at its true count.
				buckets[count[v]] = append(buckets[count[v]], v)
				continue
			}
			pick = int64(v)
			break
		}
		if pick < 0 {
			// All remaining nodes have zero marginal coverage; fill
			// with lowest unselected ids.
			for v := 0; v < n && len(res.Seeds) < k; v++ {
				if !selected[v] {
					selected[v] = true
					res.Seeds = append(res.Seeds, uint32(v))
					res.Marginals = append(res.Marginals, 0)
				}
			}
			break
		}
		v := uint32(pick)
		selected[v] = true
		gain := count[v]
		res.Seeds = append(res.Seeds, v)
		res.Marginals = append(res.Marginals, gain)
		covered += gain
		// Cover v's sets; decrement counts of their other members.
		for _, s := range idxSets[idxOff[v]:idxOff[v+1]] {
			if coveredSet[s] {
				continue
			}
			coveredSet[s] = true
			for _, u := range col.Set(int(s)) {
				count[u]--
			}
		}
		// count[v] is now 0 by construction (all its sets got covered).
	}
	res.Covered = covered
	return res
}

// CountCovered returns how many sets in col contain at least one of the
// given seeds. Used by Algorithm 3 to measure the fraction f of fresh RR
// sets covered by S'_k. It is CountCoveredWorkers with the serial scan;
// both share the pooled, sparsely-reset seed-membership scratch.
func CountCovered(n int, col *diffusion.RRCollection, seeds []uint32) int64 {
	return CountCoveredWorkers(n, col, seeds, 1)
}
