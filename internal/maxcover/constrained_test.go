package maxcover

import (
	"testing"
	"testing/quick"

	"repro/internal/diffusion"
	"repro/internal/rng"
)

// randomCollection builds a reproducible random RR collection over n nodes.
func randomCollection(seed uint64, n, sets, maxSize int) *diffusion.RRCollection {
	r := rng.New(seed)
	col := &diffusion.RRCollection{Off: []int64{0}}
	for i := 0; i < sets; i++ {
		size := 1 + r.Intn(maxSize)
		members := map[uint32]bool{}
		for len(members) < size {
			members[uint32(r.Intn(n))] = true
		}
		var s []uint32
		for v := range members {
			s = append(s, v)
		}
		col.Append(s, 0)
	}
	return col
}

func TestConstrainedMatchesGreedyWhenUnconstrained(t *testing.T) {
	col := randomCollection(1, 30, 200, 4)
	want := Greedy(30, col, 5)
	got := GreedyConstrained(30, col, Constraints{K: 5})
	if got.Covered != want.Covered {
		t.Fatalf("covered %d != unconstrained %d", got.Covered, want.Covered)
	}
}

func TestConstrainedDegenerateInputs(t *testing.T) {
	col := collectionOf([]uint32{0, 1}, []uint32{2})
	empty := &diffusion.RRCollection{Off: []int64{0}}
	allEmpty := collectionOf([]uint32{}, []uint32{}, []uint32{})

	cases := []struct {
		name    string
		n       int
		col     *diffusion.RRCollection
		c       Constraints
		seeds   int
		covered int64
	}{
		{"k=0", 3, col, Constraints{K: 0, Exclude: []uint32{1}}, 0, 0},
		{"empty collection", 3, empty, Constraints{K: 2, Exclude: []uint32{0}}, 2, 0},
		{"all sets empty", 3, allEmpty, Constraints{K: 2, Exclude: []uint32{0}}, 2, 0},
		{"all nodes excluded", 3, col, Constraints{K: 2, Exclude: []uint32{0, 1, 2}}, 0, 0},
		{"n=0", 0, empty, Constraints{K: 3, Force: []uint32{7}}, 0, 0},
		{"force out of range", 3, col, Constraints{K: 0, Force: []uint32{99}}, 0, 0},
		{"budget zero-k", 3, col, Constraints{K: 0, Budget: 10}, 0, 0},
		{"budget with empty collection", 3, empty, Constraints{K: 2, Budget: 1}, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := GreedyConstrained(tc.n, tc.col, tc.c)
			if len(res.Seeds) != tc.seeds || res.Covered != tc.covered {
				t.Fatalf("got %d seeds covering %d, want %d seeds covering %d (seeds=%v)",
					len(res.Seeds), res.Covered, tc.seeds, tc.covered, res.Seeds)
			}
			if len(res.Marginals) != len(res.Seeds) {
				t.Fatalf("marginals %v do not parallel seeds %v", res.Marginals, res.Seeds)
			}
		})
	}
}

func TestConstrainedExcludeNeverPicked(t *testing.T) {
	col := randomCollection(2, 20, 150, 4)
	res := GreedyConstrained(20, col, Constraints{K: 8, Exclude: []uint32{3, 7, 11}})
	for _, s := range res.Seeds {
		if s == 3 || s == 7 || s == 11 {
			t.Fatalf("excluded node %d picked: %v", s, res.Seeds)
		}
	}
	if len(res.Seeds) != 8 {
		t.Fatalf("want 8 picks, got %v", res.Seeds)
	}
}

func TestConstrainedForcedPreSubtraction(t *testing.T) {
	// Sets: {0,1} ×3, {2} ×1. Forcing 0 covers the three {0,1} sets, so
	// the one greedy pick must be 2 (marginal 1), not 1 (marginal 0).
	col := collectionOf([]uint32{0, 1}, []uint32{0, 1}, []uint32{0, 1}, []uint32{2})
	res := GreedyConstrained(3, col, Constraints{K: 1, Force: []uint32{0}})
	if res.Forced != 1 || res.Seeds[0] != 0 {
		t.Fatalf("forced prefix wrong: %+v", res)
	}
	if len(res.Seeds) != 2 || res.Seeds[1] != 2 {
		t.Fatalf("pick after force = %v, want [0 2]", res.Seeds)
	}
	if res.Covered != 4 {
		t.Fatalf("covered %d, want 4", res.Covered)
	}
	if res.Marginals[0] != 3 || res.Marginals[1] != 1 {
		t.Fatalf("marginals %v, want [3 1]", res.Marginals)
	}
}

func TestConstrainedForcedWinsOverExclude(t *testing.T) {
	col := collectionOf([]uint32{0}, []uint32{1})
	res := GreedyConstrained(2, col, Constraints{K: 0, Force: []uint32{0}, Exclude: []uint32{0}})
	if len(res.Seeds) != 1 || res.Seeds[0] != 0 {
		t.Fatalf("forced node lost to exclusion: %v", res.Seeds)
	}
}

func TestBudgetedRespectsBudget(t *testing.T) {
	col := randomCollection(3, 25, 200, 4)
	costs := make([]float64, 25)
	r := rng.New(4)
	for i := range costs {
		costs[i] = 0.5 + 2*r.Float64()
	}
	const budget = 4.0
	res := GreedyConstrained(25, col, Constraints{K: 25, Budget: budget, Costs: costs})
	var spend float64
	for _, v := range res.Seeds {
		spend += costs[v]
	}
	if spend > budget+1e-9 {
		t.Fatalf("spend %.3f exceeds budget %v (seeds %v)", spend, budget, res.Seeds)
	}
	if res.Cost > budget+1e-9 || res.Cost != spend {
		t.Fatalf("reported cost %.3f, spend %.3f", res.Cost, spend)
	}
}

func TestBudgetedBeatsBothSinglePasses(t *testing.T) {
	// A cheap low-value node and an expensive high-value node: the ratio
	// rule alone picks the cheap one first and strands the budget; the
	// max(ratio, uniform) combination must recover the uniform answer.
	// Node 0: covers 2 sets at cost 0.1 (ratio 20). Node 1: covers 10
	// sets at cost 1.0 (ratio 10). Budget 1.0 fits only one of 1, or 0.
	sets := [][]uint32{{0}, {0}}
	for i := 0; i < 10; i++ {
		sets = append(sets, []uint32{1})
	}
	col := collectionOf(sets...)
	res := GreedyConstrained(2, col, Constraints{K: 2, Budget: 1.0, Costs: []float64{0.1, 1.0}})
	if res.Covered != 10 {
		t.Fatalf("covered %d, want 10 (uniform pass should win); seeds %v", res.Covered, res.Seeds)
	}
}

func TestBudgetedUnitCostsMatchCardinality(t *testing.T) {
	col := randomCollection(5, 30, 200, 4)
	// The out-of-range exclusion is a no-op that routes the cardinality
	// query through the same lazy-greedy (same tie-breaking) as budget
	// mode, so the two runs must agree exactly: a unit-cost budget of 6
	// is a cardinality constraint of 6.
	card := GreedyConstrained(30, col, Constraints{K: 6, Exclude: []uint32{200}})
	budg := GreedyConstrained(30, col, Constraints{K: 30, Budget: 6, Exclude: []uint32{200}})
	if budg.Covered != card.Covered {
		t.Fatalf("unit-cost budget 6 covered %d, cardinality k=6 covered %d", budg.Covered, card.Covered)
	}
}

// TestMarginalsNonIncreasingUnderExclusions is the quickcheck property the
// issue asks for: for any random collection and any exclusion set, the
// greedy pick marginals must stay non-increasing (submodularity does not
// care which nodes were removed from the candidate pool).
func TestMarginalsNonIncreasingUnderExclusions(t *testing.T) {
	prop := func(seed uint64, nRaw, exRaw uint8) bool {
		n := 5 + int(nRaw%40)
		col := randomCollection(seed, n, 120, 5)
		r := rng.New(seed ^ 0x9e37)
		var exclude []uint32
		for v := 0; v < n; v++ {
			if r.Intn(4) == 0 || int(exRaw)%n == v {
				exclude = append(exclude, uint32(v))
			}
		}
		res := GreedyConstrained(n, col, Constraints{K: n / 2, Exclude: exclude})
		for i := 1; i < len(res.Marginals); i++ {
			if res.Marginals[i] > res.Marginals[i-1] {
				return false
			}
		}
		var sum int64
		for _, m := range res.Marginals {
			sum += m
		}
		return sum == res.Covered
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
