package maxcover

import (
	"repro/internal/diffusion"
)

// GreedyNaive is a reference implementation of the same greedy maximum
// coverage as Greedy, recomputing every node's marginal coverage from
// scratch at each of the k picks — O(k·Σ|R|) instead of O(Σ|R|). It
// exists (a) as an oracle for equivalence tests and (b) as the ablation
// baseline quantifying what the paper's "linear-time implementation"
// remark is worth (see BenchmarkAblationMaxcover).
func GreedyNaive(n int, col *diffusion.RRCollection, k int) Result {
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	res := Result{
		Seeds:     make([]uint32, 0, k),
		Marginals: make([]int64, 0, k),
	}
	if n == 0 || k == 0 {
		return res
	}
	numSets := col.Count()
	covered := make([]bool, numSets)
	selected := make([]bool, n)
	count := make([]int64, n)
	var total int64
	for len(res.Seeds) < k {
		for i := range count {
			count[i] = 0
		}
		for s := 0; s < numSets; s++ {
			if covered[s] {
				continue
			}
			for _, v := range col.Set(s) {
				count[v]++
			}
		}
		best := int64(-1)
		var bestCount int64
		for v := 0; v < n; v++ {
			if selected[v] {
				continue
			}
			if best < 0 || count[v] > bestCount {
				best, bestCount = int64(v), count[v]
			}
		}
		v := uint32(best)
		selected[best] = true
		res.Seeds = append(res.Seeds, v)
		res.Marginals = append(res.Marginals, bestCount)
		total += bestCount
		for s := 0; s < numSets; s++ {
			if covered[s] {
				continue
			}
			for _, u := range col.Set(s) {
				if u == v {
					covered[s] = true
					break
				}
			}
		}
	}
	res.Covered = total
	return res
}
