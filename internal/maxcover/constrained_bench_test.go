package maxcover

import (
	"testing"

	"repro/internal/rng"
)

// BenchmarkGreedyConstrained covers the lazy-greedy selection paths the
// constrained-query subsystem added: exclusions (cardinality lazy path)
// and budgeted ratio/uniform double pass.
func BenchmarkGreedyConstrained(b *testing.B) {
	const n = 20000
	col := randomCollection(1, n, 100000, 8)
	costs := make([]float64, n)
	r := rng.New(2)
	for i := range costs {
		costs[i] = 0.5 + 2*r.Float64()
	}
	exclude := make([]uint32, 0, n/10)
	for v := 0; v < n; v += 10 {
		exclude = append(exclude, uint32(v))
	}
	b.Run("bucket-unconstrained", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Greedy(n, col, 50)
		}
	})
	b.Run("lazy-exclusions", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			GreedyConstrained(n, col, Constraints{K: 50, Exclude: exclude})
		}
	})
	b.Run("budgeted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			GreedyConstrained(n, col, Constraints{K: 50, Budget: 40, Costs: costs})
		}
	})
}
