package maxcover

import (
	"testing"
	"testing/quick"

	"repro/internal/diffusion"
	"repro/internal/rng"
)

// collectionOf builds an RRCollection from literal sets.
func collectionOf(sets ...[]uint32) *diffusion.RRCollection {
	col := &diffusion.RRCollection{Off: []int64{0}}
	for _, s := range sets {
		col.Append(s, 0)
	}
	return col
}

func TestGreedyPaperExample(t *testing.T) {
	// Example 1 of the paper: R1={v1,v4}, R2={v2}, R3={v3}, R4={v4}
	// (0-indexed: {0,3},{1},{2},{3}). k=1 must pick v4 (=3), covering 2.
	col := collectionOf([]uint32{0, 3}, []uint32{1}, []uint32{2}, []uint32{3})
	res := Greedy(4, col, 1)
	if len(res.Seeds) != 1 || res.Seeds[0] != 3 {
		t.Fatalf("seeds=%v, want [3]", res.Seeds)
	}
	if res.Covered != 2 {
		t.Fatalf("covered=%d, want 2", res.Covered)
	}
}

func TestGreedyFullCoverage(t *testing.T) {
	col := collectionOf([]uint32{0, 1}, []uint32{1, 2}, []uint32{2, 0})
	res := Greedy(3, col, 2)
	if res.Covered != 3 {
		t.Fatalf("covered=%d, want 3", res.Covered)
	}
	if len(res.Seeds) != 2 {
		t.Fatalf("seeds=%v", res.Seeds)
	}
}

func TestGreedyMarginalsNonIncreasing(t *testing.T) {
	r := rng.New(3)
	col := &diffusion.RRCollection{Off: []int64{0}}
	const n = 40
	for i := 0; i < 300; i++ {
		size := 1 + r.Intn(5)
		set := map[uint32]bool{}
		for len(set) < size {
			set[uint32(r.Intn(n))] = true
		}
		var s []uint32
		for v := range set {
			s = append(s, v)
		}
		col.Append(s, 0)
	}
	res := Greedy(n, col, 10)
	for i := 1; i < len(res.Marginals); i++ {
		if res.Marginals[i] > res.Marginals[i-1] {
			t.Fatalf("marginals increased: %v", res.Marginals)
		}
	}
	var sum int64
	for _, m := range res.Marginals {
		sum += m
	}
	if sum != res.Covered {
		t.Fatalf("marginal sum %d != covered %d", sum, res.Covered)
	}
}

func TestGreedyExactDuplicateSets(t *testing.T) {
	// 10 copies of {5}: picking node 5 covers all.
	sets := make([][]uint32, 10)
	for i := range sets {
		sets[i] = []uint32{5}
	}
	res := Greedy(8, collectionOf(sets...), 1)
	if res.Seeds[0] != 5 || res.Covered != 10 {
		t.Fatalf("res=%+v", res)
	}
}

func TestGreedyPadsWithZeroMarginals(t *testing.T) {
	col := collectionOf([]uint32{2})
	res := Greedy(5, col, 3)
	if len(res.Seeds) != 3 {
		t.Fatalf("want exactly k seeds, got %v", res.Seeds)
	}
	if res.Seeds[0] != 2 {
		t.Fatalf("first pick should cover the only set: %v", res.Seeds)
	}
	seen := map[uint32]bool{}
	for _, s := range res.Seeds {
		if seen[s] {
			t.Fatalf("duplicate seed in %v", res.Seeds)
		}
		seen[s] = true
	}
	if res.Marginals[1] != 0 || res.Marginals[2] != 0 {
		t.Fatalf("padding marginals nonzero: %v", res.Marginals)
	}
}

func TestGreedyEmptyCollection(t *testing.T) {
	col := &diffusion.RRCollection{Off: []int64{0}}
	res := Greedy(5, col, 2)
	if len(res.Seeds) != 2 || res.Covered != 0 {
		t.Fatalf("res=%+v", res)
	}
}

func TestGreedyKClamped(t *testing.T) {
	col := collectionOf([]uint32{0}, []uint32{1})
	res := Greedy(2, col, 10)
	if len(res.Seeds) != 2 {
		t.Fatalf("k should clamp to n: %v", res.Seeds)
	}
	res = Greedy(2, col, -1)
	if len(res.Seeds) != 0 {
		t.Fatalf("negative k: %v", res.Seeds)
	}
	res = Greedy(0, col, 3)
	if len(res.Seeds) != 0 {
		t.Fatalf("n=0: %v", res.Seeds)
	}
}

func TestGreedyBeatsFractionOfOptimal(t *testing.T) {
	// Brute-force optimal coverage on random instances; greedy must be
	// within (1 - 1/e) ≈ 0.632 of it. Small universes so the exhaustive
	// search is cheap.
	r := rng.New(17)
	for trial := 0; trial < 20; trial++ {
		const n, k = 10, 3
		col := &diffusion.RRCollection{Off: []int64{0}}
		numSets := 20 + r.Intn(30)
		sets := make([][]uint32, numSets)
		for i := range sets {
			size := 1 + r.Intn(3)
			seen := map[uint32]bool{}
			for len(seen) < size {
				seen[uint32(r.Intn(n))] = true
			}
			for v := range seen {
				sets[i] = append(sets[i], v)
			}
			col.Append(sets[i], 0)
		}
		res := Greedy(n, col, k)
		best := int64(0)
		// All C(10,3)=120 subsets.
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				for c := b + 1; c < n; c++ {
					cov := CountCovered(n, col, []uint32{uint32(a), uint32(b), uint32(c)})
					if cov > best {
						best = cov
					}
				}
			}
		}
		if float64(res.Covered) < 0.632*float64(best) {
			t.Fatalf("trial %d: greedy %d < 0.632 * optimal %d", trial, res.Covered, best)
		}
	}
}

func TestCountCovered(t *testing.T) {
	col := collectionOf([]uint32{0, 1}, []uint32{2}, []uint32{1, 2})
	if got := CountCovered(3, col, []uint32{1}); got != 2 {
		t.Fatalf("covered=%d, want 2", got)
	}
	if got := CountCovered(3, col, []uint32{0, 2}); got != 3 {
		t.Fatalf("covered=%d, want 3", got)
	}
	if got := CountCovered(3, col, nil); got != 0 {
		t.Fatalf("covered=%d, want 0", got)
	}
	// Out-of-range seeds are ignored, not a crash.
	if got := CountCovered(3, col, []uint32{99}); got != 0 {
		t.Fatalf("covered=%d, want 0", got)
	}
}

func TestGreedyCoverageMatchesCountCovered(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(20)
		col := &diffusion.RRCollection{Off: []int64{0}}
		numSets := r.Intn(50)
		for i := 0; i < numSets; i++ {
			size := 1 + r.Intn(4)
			seen := map[uint32]bool{}
			for len(seen) < size {
				seen[uint32(r.Intn(n))] = true
			}
			var s []uint32
			for v := range seen {
				s = append(s, v)
			}
			col.Append(s, 0)
		}
		k := 1 + r.Intn(n)
		res := Greedy(n, col, k)
		return res.Covered == CountCovered(n, col, res.Seeds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
