package maxcover

import (
	"testing"
	"testing/quick"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TestGreedyIsTrulyGreedy: at every step, both implementations must pick
// a node whose marginal coverage equals the true maximum given their own
// prefix (tie-breaking may differ between them, so seed sequences and
// totals are not required to match exactly — greedy is not unique under
// ties).
func TestGreedyIsTrulyGreedy(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(25)
		col := &diffusion.RRCollection{Off: []int64{0}}
		numSets := r.Intn(80)
		for i := 0; i < numSets; i++ {
			maxSize := 4
			if maxSize > n {
				maxSize = n // size > n would make the dedup loop below spin forever
			}
			size := 1 + r.Intn(maxSize)
			seen := map[uint32]bool{}
			for len(seen) < size {
				seen[uint32(r.Intn(n))] = true
			}
			var s []uint32
			for v := range seen {
				s = append(s, v)
			}
			col.Append(s, 0)
		}
		k := 1 + r.Intn(n)
		for _, res := range []Result{Greedy(n, col, k), GreedyNaive(n, col, k)} {
			if !greedyInvariantHolds(n, col, res) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// greedyInvariantHolds replays res.Seeds and checks each marginal equals
// the brute-force maximum marginal at that step.
func greedyInvariantHolds(n int, col *diffusion.RRCollection, res Result) bool {
	covered := make([]bool, col.Count())
	selected := make([]bool, n)
	for step, seed := range res.Seeds {
		// Brute-force max marginal over all unselected nodes.
		var trueMax int64
		for v := 0; v < n; v++ {
			if selected[v] {
				continue
			}
			var m int64
			for s := 0; s < col.Count(); s++ {
				if covered[s] {
					continue
				}
				for _, u := range col.Set(s) {
					if int(u) == v {
						m++
						break
					}
				}
			}
			if m > trueMax {
				trueMax = m
			}
		}
		if res.Marginals[step] != trueMax {
			return false
		}
		selected[seed] = true
		for s := 0; s < col.Count(); s++ {
			if covered[s] {
				continue
			}
			for _, u := range col.Set(s) {
				if u == seed {
					covered[s] = true
					break
				}
			}
		}
	}
	return true
}

func TestGreedyNaiveBasics(t *testing.T) {
	col := &diffusion.RRCollection{Off: []int64{0}}
	col.Append([]uint32{0, 3}, 0)
	col.Append([]uint32{1}, 0)
	col.Append([]uint32{2}, 0)
	col.Append([]uint32{3}, 0)
	res := GreedyNaive(4, col, 1)
	if res.Seeds[0] != 3 || res.Covered != 2 {
		t.Fatalf("res=%+v", res)
	}
	if r := GreedyNaive(0, col, 2); len(r.Seeds) != 0 {
		t.Fatal("n=0 should return nothing")
	}
	if r := GreedyNaive(4, col, -2); len(r.Seeds) != 0 {
		t.Fatal("negative k should return nothing")
	}
}

func buildRealisticCollection(b *testing.B, sets int) (int, *diffusion.RRCollection) {
	b.Helper()
	g := gen.ChungLuDirected(5000, 30000, 2.4, 2.1, rng.New(1))
	graph.AssignWeightedCascade(g)
	col := diffusion.SampleCollection(g, diffusion.NewIC(), int64(sets), diffusion.SampleOptions{Workers: 0, Seed: 2})
	return g.N(), col
}

// BenchmarkAblationMaxcoverBucket vs ...Naive quantify the linear-time
// greedy against the O(k·Σ|R|) reference (DESIGN.md design decision 2).
func BenchmarkAblationMaxcoverBucket(b *testing.B) {
	n, col := buildRealisticCollection(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(n, col, 50)
	}
}

func BenchmarkAblationMaxcoverNaive(b *testing.B) {
	n, col := buildRealisticCollection(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyNaive(n, col, 50)
	}
}
