package maxcover

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/rng"
)

func sameResult(t *testing.T, label string, got, want Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Seeds, want.Seeds) {
		t.Fatalf("%s: seeds %v != %v", label, got.Seeds, want.Seeds)
	}
	if !reflect.DeepEqual(got.Marginals, want.Marginals) {
		t.Fatalf("%s: marginals differ", label)
	}
	if got.Covered != want.Covered || got.Forced != want.Forced || got.Cost != want.Cost {
		t.Fatalf("%s: covered/forced/cost %d/%d/%g != %d/%d/%g",
			label, got.Covered, got.Forced, got.Cost, want.Covered, want.Forced, want.Cost)
	}
}

// TestGreedyWorkersBitIdentical: the parallel index build changes nothing
// observable — picks, marginals, and coverage match the serial build on
// randomized collections large enough to actually take the parallel path.
func TestGreedyWorkersBitIdentical(t *testing.T) {
	for _, tc := range []struct{ n, sets, maxSize int }{
		{500, 6000, 12},  // above minParallelFlat: the sharded path runs
		{80, 300, 5},     // below: serial fallback, still identical
		{2000, 9000, 16}, // skewed larger instance
	} {
		col := randomCollection(uint64(tc.n), tc.n, tc.sets, tc.maxSize)
		want := GreedyWorkers(tc.n, col, 25, 1)
		for _, workers := range []int{2, 3, 8, 0} {
			got := GreedyWorkers(tc.n, col, 25, workers)
			sameResult(t, fmt.Sprintf("n=%d/workers=%d", tc.n, workers), got, want)
		}
	}
}

// TestGreedyConstrainedWorkersBitIdentical sweeps the constrained paths —
// force, exclude, budget — across worker counts.
func TestGreedyConstrainedWorkersBitIdentical(t *testing.T) {
	const n = 600
	col := randomCollection(7, n, 7000, 10)
	costs := make([]float64, n)
	r := rng.New(8)
	for i := range costs {
		costs[i] = 0.5 + 2*r.Float64()
	}
	cases := map[string]Constraints{
		"force":   {K: 10, Force: []uint32{3, 99, 250}},
		"exclude": {K: 10, Exclude: []uint32{0, 1, 2, 3, 4, 5, 6, 7}},
		"budget":  {K: 12, Budget: 9, Costs: costs},
		"all":     {K: 8, Budget: 14, Costs: costs, Force: []uint32{17}, Exclude: []uint32{40, 41}},
	}
	for name, c := range cases {
		serial := c
		serial.Workers = 1
		want := GreedyConstrained(n, col, serial)
		for _, workers := range []int{2, 5, 0} {
			par := c
			par.Workers = workers
			got := GreedyConstrained(n, col, par)
			sameResult(t, fmt.Sprintf("%s/workers=%d", name, workers), got, want)
		}
	}
}

// TestCountCoveredWorkers: the range-parallel count matches the serial
// one, and back-to-back calls stay correct (the pooled seed-mark scratch
// must reset sparsely without leaking marks between calls).
func TestCountCoveredWorkers(t *testing.T) {
	const n = 400
	col := randomCollection(9, n, 6000, 8)
	r := rng.New(10)
	for trial := 0; trial < 20; trial++ {
		seeds := make([]uint32, 1+r.Intn(30))
		for i := range seeds {
			seeds[i] = uint32(r.Intn(n + 5)) // some deliberately out of range
		}
		want := CountCovered(n, col, seeds)
		for _, workers := range []int{2, 4, 0} {
			if got := CountCoveredWorkers(n, col, seeds, workers); got != want {
				t.Fatalf("trial %d workers=%d: %d != %d", trial, workers, got, want)
			}
		}
	}
}

// TestScratchPoolCounters: the pools actually recycle.
func TestScratchPoolCounters(t *testing.T) {
	col := randomCollection(11, 300, 4000, 8)
	h0, m0 := ScratchPoolStats()
	for i := 0; i < 5; i++ {
		Greedy(300, col, 10)
		CountCovered(300, col, []uint32{1, 2, 3})
	}
	h1, m1 := ScratchPoolStats()
	if h1 <= h0 {
		t.Fatalf("no pool hits recorded: %d → %d (misses %d → %d)", h0, h1, m0, m1)
	}
}

// BenchmarkGreedyParallel measures the selection phase (index build +
// greedy cover) at one and all cores on a large-θ-shaped instance.
func BenchmarkGreedyParallel(b *testing.B) {
	const n = 20000
	col := randomCollection(1, n, 200000, 8)
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := GreedyWorkers(n, col, 50, workers)
				if len(res.Seeds) != 50 {
					b.Fatalf("picks=%d", len(res.Seeds))
				}
			}
		})
	}
}

// BenchmarkCountCoveredParallel measures the refine-pass coverage count
// at one and all cores.
func BenchmarkCountCoveredParallel(b *testing.B) {
	const n = 20000
	col := randomCollection(2, n, 200000, 8)
	seeds := make([]uint32, 50)
	for i := range seeds {
		seeds[i] = uint32(i * 17)
	}
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				CountCoveredWorkers(n, col, seeds, workers)
			}
		})
	}
}
