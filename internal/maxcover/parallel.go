package maxcover

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/diffusion"
)

// Parallel selection machinery, shared by Greedy, GreedyConstrained, and
// the refine pass (tim.refineKPT via CountCoveredWorkers).
//
// Everything here is bit-deterministic for every worker count: shards are
// contiguous set ranges, per-shard partial results reduce in fixed shard
// order, and the CSR fill writes each element into a slot precomputed
// from the shard prefix sums — so the arrays (and therefore every greedy
// pick downstream) are byte-identical to the serial build. Workers is an
// execution knob, never part of the answer.
//
// The large per-call arrays — occurrence counts, CSR offsets and set ids,
// cover bitmaps, CountCovered seed marks — come from process-wide pools,
// so a query-serving process stops paying an O(n + Σ|R|) allocation tax
// per selection. ScratchPoolStats exposes the reuse counters.

// minParallelFlat is the flat-arena size below which the serial paths
// win: shard bookkeeping and goroutine handoff cost more than the scan.
const minParallelFlat = 1 << 14

// minShardFlat is the smallest flat span worth a dedicated shard.
const minShardFlat = 1 << 12

// effectiveWorkers resolves a Workers knob (≤ 0 = all cores) against the
// work actually available.
func effectiveWorkers(workers, flatLen int) int {
	if workers == 1 || flatLen < minParallelFlat {
		return 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if most := flatLen / minShardFlat; workers > most {
		workers = most
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// setShardBounds splits [0, Count()) into workers contiguous set ranges
// of roughly equal flat (member) volume, so shards balance even when set
// sizes are skewed. bounds has workers+1 entries.
func setShardBounds(col *diffusion.RRCollection, workers int) []int {
	numSets := col.Count()
	bounds := make([]int, workers+1)
	bounds[workers] = numSets
	flatLen := col.Off[numSets]
	for w := 1; w < workers; w++ {
		target := flatLen * int64(w) / int64(workers)
		bounds[w] = sort.Search(numSets, func(s int) bool { return col.Off[s] >= target })
		if bounds[w] < bounds[w-1] {
			bounds[w] = bounds[w-1]
		}
	}
	return bounds
}

// parallelRanges runs fn over workers contiguous ranges of [0, n) and
// waits for all of them.
func parallelRanges(n, workers int, fn func(lo, hi int)) {
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// coverIndex is the node-selection data structure: per-node occurrence
// counts (mutated by the pick loops as sets become covered) and the CSR
// inverted index mapping each node to the ids of the sets containing it,
// ascending within a node.
type coverIndex struct {
	count []int64
	off   []int64
	sets  []uint32
}

// buildCoverIndex computes the coverIndex over col, parallelizing the
// occurrence count and the CSR fill across set shards. The returned
// release func recycles the arrays; the caller must not touch the index
// after calling it.
func buildCoverIndex(n int, col *diffusion.RRCollection, workers int) (coverIndex, func()) {
	workers = effectiveWorkers(workers, len(col.Flat))
	count := i64Pool.get(n, workers == 1) // the serial path counts in place
	off := i64Pool.get(n+1, false)
	sets := u32Pool.get(len(col.Flat))
	release := func() {
		i64Pool.put(count)
		i64Pool.put(off)
		u32Pool.put(sets)
	}

	if workers == 1 {
		for _, v := range col.Flat {
			count[v]++
		}
		off[0] = 0
		for v := 0; v < n; v++ {
			off[v+1] = off[v] + count[v]
		}
		fill := i64Pool.get(n, false)
		copy(fill, off[:n])
		numSets := col.Count()
		for s := 0; s < numSets; s++ {
			for _, v := range col.Set(s) {
				sets[fill[v]] = uint32(s)
				fill[v]++
			}
		}
		i64Pool.put(fill)
		return coverIndex{count: count, off: off, sets: sets}, release
	}

	bounds := setShardBounds(col, workers)
	shard := make([][]int64, workers)
	for w := range shard {
		shard[w] = i64Pool.get(n, true)
	}
	// Pass 1: each shard counts occurrences over its contiguous flat span
	// into a private vector.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cnt := shard[w]
			for _, v := range col.Flat[col.Off[bounds[w]]:col.Off[bounds[w+1]]] {
				cnt[v]++
			}
		}(w)
	}
	wg.Wait()
	// Pass 2 (the deterministic reduce): over node ranges, total the
	// shard counts in fixed shard order while converting each shard's
	// entry into its exclusive prefix — the per-shard fill start relative
	// to the node's CSR slot.
	parallelRanges(n, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			var run int64
			for w := 0; w < workers; w++ {
				t := shard[w][v]
				shard[w][v] = run
				run += t
			}
			count[v] = run
		}
	})
	off[0] = 0
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + count[v]
	}
	// Pass 3: parallel CSR fill over the precomputed shard offsets. Shard
	// w's occurrences of node v land at off[v] + prefix_w(v) onward, so
	// the final array is exactly the serial set-major order.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fill := shard[w]
			for s := bounds[w]; s < bounds[w+1]; s++ {
				for _, v := range col.Set(s) {
					sets[off[v]+fill[v]] = uint32(s)
					fill[v]++
				}
			}
		}(w)
	}
	wg.Wait()
	for w := range shard {
		i64Pool.put(shard[w])
	}
	return coverIndex{count: count, off: off, sets: sets}, release
}

// CountCoveredWorkers is CountCovered parallelized over contiguous set
// ranges (workers ≤ 0 = all cores). The result is identical for every
// worker count. The seed-membership scratch comes from a pool and is
// reset sparsely, so a call costs O(Σ|R| / workers + |seeds|) — not the
// O(n) allocation the refine inner loop used to pay per call.
func CountCoveredWorkers(n int, col *diffusion.RRCollection, seeds []uint32, workers int) int64 {
	numSets := col.Count()
	if numSets == 0 || len(seeds) == 0 {
		return 0
	}
	inSeeds := seedMarks.get(n)
	for _, s := range seeds {
		if int(s) < n {
			inSeeds[s] = true
		}
	}
	workers = effectiveWorkers(workers, len(col.Flat))
	var covered int64
	if workers == 1 {
		for s := 0; s < numSets; s++ {
			for _, v := range col.Set(s) {
				if inSeeds[v] {
					covered++
					break
				}
			}
		}
	} else {
		bounds := setShardBounds(col, workers)
		part := make([]int64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var c int64
				for s := bounds[w]; s < bounds[w+1]; s++ {
					for _, v := range col.Set(s) {
						if inSeeds[v] {
							c++
							break
						}
					}
				}
				part[w] = c
			}(w)
		}
		wg.Wait()
		for _, c := range part {
			covered += c
		}
	}
	// Sparse reset restores the pool invariant (all entries false) in
	// O(|seeds|) instead of a full clear.
	for _, s := range seeds {
		if int(s) < n {
			inSeeds[s] = false
		}
	}
	seedMarks.put(inSeeds)
	return covered
}

// Scratch pools. Slices are stored by pointer (SA6002); every get checks
// capacity and falls back to a fresh allocation, so pools never constrain
// problem size — they only recycle.

type i64SlicePool struct {
	p            sync.Pool
	hits, misses atomic.Int64
}

func (sp *i64SlicePool) get(n int, zero bool) []int64 {
	if v := sp.p.Get(); v != nil {
		s := *(v.(*[]int64))
		scratchPoolBytes.Add(-int64(cap(s)) * 8)
		if cap(s) >= n {
			s = s[:n]
			if zero {
				for i := range s {
					s[i] = 0
				}
			}
			sp.hits.Add(1)
			return s
		}
	}
	sp.misses.Add(1)
	return make([]int64, n)
}

func (sp *i64SlicePool) put(s []int64) {
	scratchPoolBytes.Add(int64(cap(s)) * 8)
	sp.p.Put(&s)
}

type u32SlicePool struct {
	p            sync.Pool
	hits, misses atomic.Int64
}

func (sp *u32SlicePool) get(n int) []uint32 {
	if v := sp.p.Get(); v != nil {
		s := *(v.(*[]uint32))
		scratchPoolBytes.Add(-int64(cap(s)) * 4)
		if cap(s) >= n {
			sp.hits.Add(1)
			return s[:n]
		}
	}
	sp.misses.Add(1)
	return make([]uint32, n)
}

func (sp *u32SlicePool) put(s []uint32) {
	scratchPoolBytes.Add(int64(cap(s)) * 4)
	sp.p.Put(&s)
}

// boolSlicePool hands out zeroed bool slices (get clears: same cost as a
// fresh make, without the allocation and GC churn).
type boolSlicePool struct {
	p            sync.Pool
	hits, misses atomic.Int64
}

func (sp *boolSlicePool) get(n int) []bool {
	if v := sp.p.Get(); v != nil {
		s := *(v.(*[]bool))
		scratchPoolBytes.Add(-int64(cap(s)))
		if cap(s) >= n {
			s = s[:n]
			for i := range s {
				s[i] = false
			}
			sp.hits.Add(1)
			return s
		}
	}
	sp.misses.Add(1)
	return make([]bool, n)
}

func (sp *boolSlicePool) put(s []bool) {
	scratchPoolBytes.Add(int64(cap(s)))
	sp.p.Put(&s)
}

// seedMarkPool pools the CountCovered membership scratch under a
// stronger invariant: every slice in the pool is all-false over its full
// capacity, maintained by callers resetting exactly the entries they set.
// That is what lets get skip the O(n) clear entirely.
type seedMarkPool struct {
	p            sync.Pool
	hits, misses atomic.Int64
}

func (sp *seedMarkPool) get(n int) []bool {
	if v := sp.p.Get(); v != nil {
		s := *(v.(*[]bool))
		scratchPoolBytes.Add(-int64(cap(s)))
		if cap(s) >= n {
			sp.hits.Add(1)
			return s[:n]
		}
	}
	sp.misses.Add(1)
	return make([]bool, n)
}

func (sp *seedMarkPool) put(s []bool) {
	scratchPoolBytes.Add(int64(cap(s)))
	sp.p.Put(&s)
}

var (
	i64Pool   i64SlicePool
	u32Pool   u32SlicePool
	boolPool  boolSlicePool
	seedMarks seedMarkPool

	// scratchPoolBytes approximates bytes parked across all four pools:
	// added on put, subtracted on every pool get (reused or dropped as
	// too small). sync.Pool may free entries under GC pressure without
	// notice, so this upper-bounds retention; clamped at zero on read.
	scratchPoolBytes atomic.Int64
)

// ScratchPoolStats reports the process-wide selection scratch reuse
// counters across all pools: hits (gets served from a pool) and misses
// (fresh allocations). Exposed for operational visibility (/v1/stats).
func ScratchPoolStats() (hits, misses int64) {
	hits = i64Pool.hits.Load() + u32Pool.hits.Load() + boolPool.hits.Load() + seedMarks.hits.Load()
	misses = i64Pool.misses.Load() + u32Pool.misses.Load() + boolPool.misses.Load() + seedMarks.misses.Load()
	return hits, misses
}

// ScratchPoolBytes reports the approximate bytes of selection scratch
// currently parked across the pools (best effort: the GC may free
// pooled entries without notice, so this upper-bounds retention).
func ScratchPoolBytes() int64 {
	if b := scratchPoolBytes.Load(); b > 0 {
		return b
	}
	return 0
}
