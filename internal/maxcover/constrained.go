package maxcover

import (
	"container/heap"

	"repro/internal/diffusion"
)

// Constraints configures GreedyConstrained, the selection entry point of
// the constrained-query subsystem (internal/query). The zero value (with K
// set) is plain cardinality greedy.
type Constraints struct {
	// K is the number of nodes to pick beyond Force. In budget mode it is
	// still a cap: at most K picks, subject to Budget.
	K int
	// Budget, when positive, switches to budgeted selection: picked nodes
	// must have total cost at most Budget. The pick rule runs both the
	// cost-ratio greedy (marginal/cost) and the cost-oblivious greedy
	// (marginal, skipping unaffordable nodes) and keeps whichever covers
	// more — the standard trick that restores a constant-factor guarantee
	// the ratio rule alone lacks (Khuller–Moss–Naor).
	Budget float64
	// Costs[v] is the cost of seeding v; nil means unit costs. Ignored
	// unless Budget > 0; costs must be positive (internal/query validates).
	Costs []float64
	// Force are warm-start seeds: they are selected first, in order, their
	// coverage pre-subtracted, and they consume neither K nor Budget.
	// Duplicates and out-of-range ids are dropped.
	Force []uint32
	// Exclude are nodes that must never be picked (forced nodes win over
	// exclusion). Out-of-range ids are ignored.
	Exclude []uint32
	// Workers is an execution knob, not a constraint: the parallelism of
	// the occurrence count and inverted-index build (≤ 0 = all cores,
	// 1 = serial). Selection results are byte-identical for every value.
	Workers int
}

// constrained reports whether selection needs the constrained path at all;
// plain (K)-cardinality selection without force/exclude/budget should use
// the faster bucket-based Greedy.
func (c *Constraints) constrained() bool {
	return c.Budget > 0 || len(c.Force) > 0 || len(c.Exclude) > 0
}

// GreedyConstrained selects seeds maximizing RR-set coverage under the
// given constraints. The returned Seeds begin with the (deduplicated)
// forced nodes in their given order — Result.Forced counts them — followed
// by up to K greedy picks. In cardinality mode, picks are padded with
// zero-marginal non-excluded nodes (lowest id first) so that exactly K
// picks are returned whenever enough eligible nodes exist; in budget mode
// selection stops at zero marginal gain or when nothing else is
// affordable. Ties break toward the lower node id, so the result is
// deterministic for a fixed collection.
func GreedyConstrained(n int, col *diffusion.RRCollection, c Constraints) Result {
	if !c.constrained() {
		return GreedyWorkers(n, col, c.K, c.Workers)
	}
	k := c.K
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	res := Result{
		Seeds:     make([]uint32, 0, k+len(c.Force)),
		Marginals: make([]int64, 0, k+len(c.Force)),
	}
	if n == 0 {
		return res
	}
	idx, release := buildCoverIndex(n, col, c.Workers)
	defer release()
	count, idxOff, idxSets := idx.count, idx.off, idx.sets
	coveredSet := boolPool.get(col.Count())
	selected := boolPool.get(n)
	defer func() {
		boolPool.put(coveredSet)
		boolPool.put(selected)
	}()
	excluded := make([]bool, n)
	for _, v := range c.Exclude {
		if int(v) < n {
			excluded[v] = true
		}
	}

	// Warm-start: cover the forced nodes first, recording their marginal
	// coverage in order, so the greedy picks below optimize genuinely
	// marginal gain over what the caller has already seeded.
	cover := func(v uint32) int64 {
		gain := count[v]
		for _, s := range idxSets[idxOff[v]:idxOff[v+1]] {
			if coveredSet[s] {
				continue
			}
			coveredSet[s] = true
			for _, u := range col.Set(int(s)) {
				count[u]--
			}
		}
		return gain
	}
	for _, v := range c.Force {
		if int(v) >= n || selected[v] {
			continue
		}
		selected[v] = true
		gain := cover(v)
		res.Seeds = append(res.Seeds, v)
		res.Marginals = append(res.Marginals, gain)
		res.Covered += gain
		res.Forced++
	}

	if k == 0 {
		return res
	}
	if c.Budget <= 0 {
		greedyLazy(n, col, count, idxOff, idxSets, coveredSet, selected, excluded, k, nil, 0, false, &res)
		// Pad with zero-marginal eligible nodes, as Greedy does, so
		// cardinality queries keep the "exactly k picks" contract.
		for v := 0; v < n && len(res.Seeds)-res.Forced < k; v++ {
			if !selected[v] && !excluded[v] {
				selected[v] = true
				res.Seeds = append(res.Seeds, uint32(v))
				res.Marginals = append(res.Marginals, 0)
			}
		}
		return res
	}

	// Budget mode: run ratio and uniform passes on copies of the
	// post-forced state, keep the better cover.
	ratio := res
	ratio.Seeds = append([]uint32(nil), res.Seeds...)
	ratio.Marginals = append([]int64(nil), res.Marginals...)
	greedyLazy(n, col, cloneI64(count), idxOff, idxSets, cloneBool(coveredSet),
		cloneBool(selected), excluded, k, c.Costs, c.Budget, true, &ratio)

	uniform := res
	uniform.Seeds = append([]uint32(nil), res.Seeds...)
	uniform.Marginals = append([]int64(nil), res.Marginals...)
	greedyLazy(n, col, count, idxOff, idxSets, coveredSet,
		selected, excluded, k, c.Costs, c.Budget, false, &uniform)

	if ratio.Covered >= uniform.Covered {
		return ratio
	}
	return uniform
}

// greedyLazy is a CELF-style lazy greedy: a max-heap of (stale) marginal
// gains, re-evaluated on pop. budget <= 0 means cardinality-only; costs
// nil means unit costs. It appends picks to res and updates Covered/Cost.
//
// With budget > 0, rankByRatio selects the ranking score — gain/cost (the
// ratio pass) or raw gain (the cost-oblivious pass); both respect
// affordability: a popped node whose cost exceeds the remaining budget is
// dropped from candidacy and the scan continues.
func greedyLazy(n int, col *diffusion.RRCollection, count []int64, idxOff []int64, idxSets []uint32,
	coveredSet []bool, selected, excluded []bool, k int, costs []float64, budget float64, rankByRatio bool, res *Result) {

	costOf := func(v uint32) float64 {
		if costs == nil {
			return 1
		}
		return costs[v]
	}
	scoreOf := func(v uint32, gain int64) float64 {
		if rankByRatio {
			return float64(gain) / costOf(v)
		}
		return float64(gain)
	}
	h := candidateHeap{}
	for v := 0; v < n; v++ {
		if selected[v] || excluded[v] || count[v] == 0 {
			continue
		}
		h = append(h, candidate{node: uint32(v), gain: count[v], score: scoreOf(uint32(v), count[v])})
	}
	heap.Init(&h)
	remaining := budget
	picks := 0
	for picks < k && h.Len() > 0 {
		top := h[0]
		if count[top.node] != top.gain {
			// Stale: re-score with the current gain and reposition.
			top.gain = count[top.node]
			top.score = scoreOf(top.node, top.gain)
			h[0] = top
			heap.Fix(&h, 0)
			continue
		}
		heap.Pop(&h)
		if top.gain == 0 {
			break // submodularity: nothing below has gain either
		}
		if budget > 0 && costOf(top.node) > remaining {
			continue // unaffordable now, and costs never shrink: drop it
		}
		v := top.node
		selected[v] = true
		res.Seeds = append(res.Seeds, v)
		res.Marginals = append(res.Marginals, top.gain)
		res.Covered += top.gain
		if budget > 0 {
			remaining -= costOf(v)
			res.Cost += costOf(v)
		}
		picks++
		for _, s := range idxSets[idxOff[v]:idxOff[v+1]] {
			if coveredSet[s] {
				continue
			}
			coveredSet[s] = true
			for _, u := range col.Set(int(s)) {
				count[u]--
			}
		}
	}
}

func cloneI64(xs []int64) []int64 { return append([]int64(nil), xs...) }
func cloneBool(xs []bool) []bool  { return append([]bool(nil), xs...) }

// candidate is one heap entry of the lazy greedy.
type candidate struct {
	node  uint32
	gain  int64   // the marginal gain this score was computed from
	score float64 // ranking key: gain, or gain/cost in the ratio pass
}

// candidateHeap is a max-heap by score, ties toward the lower node id.
type candidateHeap []candidate

func (h candidateHeap) Len() int { return len(h) }
func (h candidateHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score > h[j].score
	}
	return h[i].node < h[j].node
}
func (h candidateHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candidateHeap) Push(x any)   { *h = append(*h, x.(candidate)) }
func (h *candidateHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
