package exp

import (
	"fmt"
	"time"

	"repro/internal/diffusion"
	"repro/internal/tim"
)

// largeProfiles are the four datasets of Figures 6 and 7.
var largeProfiles = []string{"epinions", "dblp", "livejournal", "twitter"}

// runFig6 reproduces Figure 6 (running time vs k of TIM and TIM+ on the
// four large datasets, IC and LT).
func runFig6(cfg Config) (*Report, error) {
	rep := &Report{
		Title:  "Running time vs k on large profiles (TIM, TIM+; IC and LT)",
		Header: []string{"dataset", "model", "k", "algorithm", "seconds"},
	}
	for _, name := range largeProfiles {
		for _, kind := range []diffusion.Kind{diffusion.IC, diffusion.LT} {
			g, err := dataset(name, cfg.Scale, kind, cfg.Seed)
			if err != nil {
				return nil, err
			}
			model := modelOf(kind)
			for _, k := range cfg.KValues {
				for _, variant := range []tim.Algorithm{tim.TIM, tim.TIMPlus} {
					start := time.Now()
					if _, err := tim.Maximize(g, model, tim.Options{
						K: k, Epsilon: cfg.Epsilon, Variant: variant,
						Workers: cfg.Workers, Seed: cfg.Seed,
					}); err != nil {
						return nil, err
					}
					rep.Append(name, kind, k, variant.String(), time.Since(start))
				}
			}
		}
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("profiles generated at scale=%v; the paper runs the full crawls (see EXPERIMENTS.md for the shape comparison)", cfg.Scale),
		"expected shape: TIM+ <= TIM everywhere; LT faster than IC; time tends to fall as k grows")
	return rep, nil
}

// runFig7 reproduces Figure 7 (running time vs ε of TIM and TIM+ on the
// four large datasets, IC and LT, k = 50).
func runFig7(cfg Config) (*Report, error) {
	rep := &Report{
		Title:  "Running time vs epsilon on large profiles (TIM, TIM+; k=50)",
		Header: []string{"dataset", "model", "epsilon", "algorithm", "seconds"},
	}
	k := 50
	for _, name := range largeProfiles {
		for _, kind := range []diffusion.Kind{diffusion.IC, diffusion.LT} {
			g, err := dataset(name, cfg.Scale, kind, cfg.Seed)
			if err != nil {
				return nil, err
			}
			if k > g.N() {
				k = g.N()
			}
			model := modelOf(kind)
			for _, eps := range cfg.EpsValues {
				for _, variant := range []tim.Algorithm{tim.TIM, tim.TIMPlus} {
					start := time.Now()
					if _, err := tim.Maximize(g, model, tim.Options{
						K: k, Epsilon: eps, Variant: variant,
						Workers: cfg.Workers, Seed: cfg.Seed,
					}); err != nil {
						return nil, err
					}
					rep.Append(name, kind, eps, variant.String(), time.Since(start))
				}
			}
		}
	}
	rep.Notes = append(rep.Notes,
		"expected shape: time falls steeply as epsilon grows (theta is proportional to 1/eps^2)")
	return rep, nil
}
