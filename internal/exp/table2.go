package exp

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
)

// runTable2 reproduces Table 2 (dataset characteristics): for each of the
// five profiles it generates the synthetic stand-in at the configured
// scale and reports n, m, type, and average degree next to the paper's
// original values.
func runTable2(cfg Config) (*Report, error) {
	rep := &Report{
		Title:  "Dataset characteristics (synthetic stand-ins vs paper)",
		Header: []string{"name", "type", "n", "m(directed)", "avg_degree", "paper_n", "paper_m", "paper_avg_degree", "p99_outdeg"},
	}
	for _, p := range gen.Profiles() {
		g := p.Generate(cfg.Scale, cfg.Seed)
		st := graph.ComputeStats(g)
		typ := "directed"
		if !p.Directed {
			typ = "undirected"
		}
		// The paper's "average degree" counts both directions for
		// undirected datasets; our directed count already mirrors
		// undirected edges, so st.AverageDegree is comparable to
		// 2m/n for undirected and m/n... the paper reports in+out
		// for directed sets. Report directed m/n and annotate.
		rep.Append(p.Name, typ, st.Nodes, st.Edges, st.AverageDegree,
			p.PaperN, p.PaperM, p.AvgDegree, st.DegreePercentiles[2])
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("scale=%v; synthetic n scales the paper's n down, edge counts scale proportionally (see gen.Profiles)", cfg.Scale),
		"avg_degree counts directed edges per node; the paper's column counts undirected degree for undirected datasets and in+out for directed ones")
	return rep, nil
}
