package exp

import (
	"time"

	"repro/internal/algo/irie"
	"repro/internal/algo/simpath"
	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/spread"
	"repro/internal/tim"
)

// heuristicProfiles are the four datasets of Figures 8–11 (Twitter is
// excluded in the paper because IRIE/SIMPATH exceed the machine's 48 GB).
var heuristicProfiles = []string{"nethept", "epinions", "dblp", "livejournal"}

// timPlusLoose runs TIM+ with ε = ℓ = 1, the §7.3 configuration that
// trades guarantees for empirical speed when racing heuristics.
func timPlusLoose(g *graph.Graph, model diffusion.Model, k, workers int, seed uint64) (*tim.Result, error) {
	return tim.Maximize(g, model, tim.Options{
		K: k, Epsilon: 1, Ell: 1, Variant: tim.TIMPlus,
		Workers: workers, Seed: seed,
	})
}

// runFig8 reproduces Figure 8 (running time vs k: TIM+ with ε=ℓ=1 versus
// IRIE, IC model, four datasets).
func runFig8(cfg Config) (*Report, error) {
	rep := &Report{
		Title:  "Running time vs k under IC: TIM+ (eps=ell=1) vs IRIE",
		Header: []string{"dataset", "k", "algorithm", "seconds"},
	}
	for _, name := range heuristicProfiles {
		g, err := dataset(name, cfg.Scale, diffusion.IC, cfg.Seed)
		if err != nil {
			return nil, err
		}
		model := modelOf(diffusion.IC)
		for _, k := range cfg.KValues {
			start := time.Now()
			if _, err := timPlusLoose(g, model, k, cfg.Workers, cfg.Seed); err != nil {
				return nil, err
			}
			rep.Append(name, k, "TIM+", time.Since(start))

			start = time.Now()
			if _, err := irie.Select(g, irie.Options{K: k}); err != nil {
				return nil, err
			}
			rep.Append(name, k, "IRIE", time.Since(start))
		}
	}
	rep.Notes = append(rep.Notes,
		"expected shape: IRIE wins at small k; TIM+ flat-to-decreasing in k and ahead for k > 20")
	return rep, nil
}

// runFig9 reproduces Figure 9 (expected spread vs k: TIM+ vs IRIE, IC).
func runFig9(cfg Config) (*Report, error) {
	rep := &Report{
		Title:  "Expected spread vs k under IC: TIM+ (eps=ell=1) vs IRIE",
		Header: []string{"dataset", "k", "algorithm", "spread"},
	}
	for _, name := range heuristicProfiles {
		g, err := dataset(name, cfg.Scale, diffusion.IC, cfg.Seed)
		if err != nil {
			return nil, err
		}
		model := modelOf(diffusion.IC)
		for _, k := range cfg.KValues {
			timRes, err := timPlusLoose(g, model, k, cfg.Workers, cfg.Seed)
			if err != nil {
				return nil, err
			}
			irieRes, err := irie.Select(g, irie.Options{K: k})
			if err != nil {
				return nil, err
			}
			eval := func(seeds []uint32) float64 {
				return spread.Estimate(g, model, seeds, spread.Options{
					Samples: cfg.MCSamples, Workers: cfg.Workers, Seed: cfg.Seed + 999,
				})
			}
			rep.Append(name, k, "TIM+", eval(timRes.Seeds))
			rep.Append(name, k, "IRIE", eval(irieRes.Seeds))
		}
	}
	rep.Notes = append(rep.Notes,
		"expected shape: TIM+ spread >= IRIE everywhere, noticeably higher on the dblp/livejournal profiles")
	return rep, nil
}

// runFig10 reproduces Figure 10 (running time vs k: TIM+ with ε=ℓ=1
// versus SIMPATH, LT model, four datasets).
func runFig10(cfg Config) (*Report, error) {
	rep := &Report{
		Title:  "Running time vs k under LT: TIM+ (eps=ell=1) vs SIMPATH",
		Header: []string{"dataset", "k", "algorithm", "seconds", "truncated"},
	}
	for _, name := range heuristicProfiles {
		g, err := dataset(name, cfg.Scale, diffusion.LT, cfg.Seed)
		if err != nil {
			return nil, err
		}
		model := modelOf(diffusion.LT)
		for _, k := range cfg.KValues {
			start := time.Now()
			if _, err := timPlusLoose(g, model, k, cfg.Workers, cfg.Seed); err != nil {
				return nil, err
			}
			rep.Append(name, k, "TIM+", time.Since(start), false)

			start = time.Now()
			spRes, err := simpath.Select(g, simpath.Options{K: k})
			if err != nil {
				return nil, err
			}
			rep.Append(name, k, "SIMPATH", time.Since(start), spRes.Truncated)
		}
	}
	rep.Notes = append(rep.Notes,
		"expected shape: TIM+ faster than SIMPATH by growing margins as k rises (three orders of magnitude at k=50 on the livejournal profile in the paper)")
	return rep, nil
}

// runFig11 reproduces Figure 11 (expected spread vs k: TIM+ vs SIMPATH,
// LT).
func runFig11(cfg Config) (*Report, error) {
	rep := &Report{
		Title:  "Expected spread vs k under LT: TIM+ (eps=ell=1) vs SIMPATH",
		Header: []string{"dataset", "k", "algorithm", "spread"},
	}
	for _, name := range heuristicProfiles {
		g, err := dataset(name, cfg.Scale, diffusion.LT, cfg.Seed)
		if err != nil {
			return nil, err
		}
		model := modelOf(diffusion.LT)
		for _, k := range cfg.KValues {
			timRes, err := timPlusLoose(g, model, k, cfg.Workers, cfg.Seed)
			if err != nil {
				return nil, err
			}
			spRes, err := simpath.Select(g, simpath.Options{K: k})
			if err != nil {
				return nil, err
			}
			eval := func(seeds []uint32) float64 {
				return spread.Estimate(g, model, seeds, spread.Options{
					Samples: cfg.MCSamples, Workers: cfg.Workers, Seed: cfg.Seed + 999,
				})
			}
			rep.Append(name, k, "TIM+", eval(timRes.Seeds))
			rep.Append(name, k, "SIMPATH", eval(spRes.Seeds))
		}
	}
	rep.Notes = append(rep.Notes,
		"expected shape: TIM+ spread no worse than SIMPATH, significantly higher on the livejournal profile")
	return rep, nil
}
