package exp

import (
	"fmt"
	"time"

	"repro/internal/diffusion"
	"repro/internal/dist"
	"repro/internal/tim"
)

func init() {
	registry["dist"] = runDistScaling
}

// runDistScaling studies the §8 future-work direction implemented in
// internal/dist: distributed TIM+ on P simulated machines versus the
// single-machine implementation. The interesting columns are the
// per-shard graph memory (the reason to distribute: it must fall as
// ~1/P) and the network traffic paid for it (it grows with P). Seeds
// and θ are invariant in P by construction, so solution quality columns
// would be constant — the spread estimate is reported once to show it.
func runDistScaling(cfg Config) (*Report, error) {
	rep := &Report{
		Title: "Distributed TIM+ (simulated): shard count vs memory and traffic (NetHEPT profile, IC)",
		Header: []string{"machines", "seconds", "max_shard_graph_MB", "net_messages",
			"net_MB", "expand_round_trips", "theta", "spread_est"},
	}
	g, err := dataset("nethept", cfg.Scale, diffusion.IC, cfg.Seed)
	if err != nil {
		return nil, err
	}
	const k = 20

	// Single-machine reference row (shards=0 denotes tim.Maximize).
	start := time.Now()
	ref, err := tim.Maximize(g, modelOf(diffusion.IC), tim.Options{
		K: k, Epsilon: cfg.Epsilon, Workers: cfg.Workers, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	rep.Append("1 (tim.Maximize)", time.Since(start), float64(g.MemoryFootprint())/1e6,
		0, 0.0, 0, ref.Theta, ref.SpreadEstimate)

	for _, p := range []int{1, 2, 4, 8} {
		start := time.Now()
		res, err := dist.Maximize(g, modelOf(diffusion.IC), dist.Options{
			K: k, Shards: p, Epsilon: cfg.Epsilon, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		var maxShard int64
		for _, b := range res.ShardMemoryBytes {
			if b > maxShard {
				maxShard = b
			}
		}
		rep.Append(p, time.Since(start), float64(maxShard)/1e6,
			res.Net.Messages, float64(res.Net.Bytes)/1e6,
			res.Net.ExpandRequests, res.Theta, res.SpreadEstimate)
	}
	rep.Notes = append(rep.Notes,
		"seeds and theta are shard-count invariant by construction (randomness keyed per (batch, RR id, node))",
		fmt.Sprintf("single-machine graph footprint %.1f MB; per-shard footprint should fall ~1/P while traffic rises with P", float64(g.MemoryFootprint())/1e6))
	return rep, nil
}
