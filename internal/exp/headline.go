package exp

import (
	"fmt"
	"time"

	"repro/internal/diffusion"
	"repro/internal/spread"
	"repro/internal/tim"
)

func init() {
	registry["headline"] = runHeadline
}

// runHeadline reproduces the abstract's headline configuration: k=50,
// ε=0.2, ℓ=1 on the Twitter profile ("less than one hour on a commodity
// machine to process a network with 41.6 million nodes and 1.4 billion
// edges"), under both models, with the seed set's Monte-Carlo spread as
// a quality witness. At tiny/small scales the wall time scales down
// with the synthetic graph; the full-scale profile is the paper's
// actual size.
func runHeadline(cfg Config) (*Report, error) {
	rep := &Report{
		Title:  "Headline: TIM+ k=50 eps=0.2 ell=1 on the Twitter profile",
		Header: []string{"model", "n", "m", "seconds", "theta", "rr_mb", "mc_spread"},
	}
	for _, kind := range []diffusion.Kind{diffusion.IC, diffusion.LT} {
		g, err := dataset("twitter", cfg.Scale, kind, cfg.Seed)
		if err != nil {
			return nil, err
		}
		model := modelOf(kind)
		k := 50
		if k > g.N() {
			k = g.N()
		}
		start := time.Now()
		res, err := tim.Maximize(g, model, tim.Options{
			K: k, Epsilon: 0.2, Ell: 1,
			Workers: cfg.Workers, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		mc := spread.Estimate(g, model, res.Seeds, spread.Options{
			Samples: cfg.MCSamples, Workers: cfg.Workers, Seed: cfg.Seed + 999,
		})
		rep.Append(kind, g.N(), g.M(), elapsed, res.Theta,
			float64(res.MemoryBytes)/(1<<20), mc)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("paper: <1h at 41.6M nodes / 1.4B edges; this run is the %v-scale profile — compare shape, not seconds", cfg.Scale))
	return rep, nil
}
