package exp

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/compete"
	"repro/internal/diffusion"
)

func init() {
	registry["compete"] = runCompete
	shapeChecks["compete"] = checkCompeteShape
}

// runCompete exercises the §8 competitive extension (internal/compete):
// an incumbent holds the top-degree hubs; a challenger with budget k
// picks seeds by the follower's-problem greedy versus two baselines.
// The challenger column is its absolute expected adoptions — the
// quantity the greedy maximizes.
func runCompete(cfg Config) (*Report, error) {
	rep := &Report{
		Title:  "Competitive IM: follower greedy vs baselines (NetHEPT profile, IC, random ties)",
		Header: []string{"k", "strategy", "incumbent_adoptions", "challenger_adoptions", "seconds"},
	}
	g, err := dataset("nethept", cfg.Scale, diffusion.IC, cfg.Seed)
	if err != nil {
		return nil, err
	}
	arena := compete.NewArena(g, modelOf(diffusion.IC), compete.Options{
		Samples: cfg.MCSamples / 5,
		Workers: cfg.Workers,
		Seed:    cfg.Seed + 1,
	})
	incumbent := topByOutDegree(g, 3)

	for _, k := range []int{1, 5, 10} {
		start := time.Now()
		greedy, err := arena.FollowerGreedy([][]uint32{incumbent}, compete.FollowerOptions{K: k})
		if err != nil {
			return nil, err
		}
		greedyTime := time.Since(start)

		nextDeg := topByOutDegree(g, 3+k)[3:]
		strategies := []struct {
			name  string
			seeds []uint32
		}{
			{"greedy", greedy.Seeds},
			{"next-degree", nextDeg},
			{"copycat", append(append([]uint32{}, incumbent...), nextDeg[:max(0, k-3)]...)[:k]},
		}
		for _, s := range strategies {
			start := time.Now()
			shares, err := arena.Shares([][]uint32{incumbent, s.seeds})
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			if s.name == "greedy" {
				elapsed = greedyTime
			}
			rep.Append(k, s.name, shares[0], shares[1], elapsed)
		}
	}
	rep.Notes = append(rep.Notes,
		"challenger_adoptions is the follower's objective; greedy should lead that column (within greedy's (1-1/e) slack)",
		"copycat may show the lowest incumbent_adoptions without leading the challenger column — hurting the rival is not winning")
	return rep, nil
}

// topByOutDegree returns the k highest out-degree nodes (ties to the
// lowest id).
func topByOutDegree(g interface {
	N() int
	OutDegree(uint32) int
}, k int) []uint32 {
	ids := make([]uint32, g.N())
	for v := range ids {
		ids[v] = uint32(v)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := g.OutDegree(ids[i]), g.OutDegree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

// checkCompeteShape: per k, greedy's challenger adoptions must be at
// least 0.9 × the best baseline's (greedy has a (1−1/e) guarantee; in
// practice it leads outright).
func checkCompeteShape(rep *Report) []ShapeFinding {
	byK := map[string]map[string]float64{}
	for _, row := range rep.Rows {
		if byK[row[0]] == nil {
			byK[row[0]] = map[string]float64{}
		}
		byK[row[0]][row[1]] = cell(row, 3)
	}
	var out []ShapeFinding
	for k, strategies := range byK {
		best := max(strategies["next-degree"], strategies["copycat"])
		out = append(out, ShapeFinding{
			Claim: "k=" + k + ": greedy challenger >= 0.9x best baseline",
			OK:    strategies["greedy"] >= 0.9*best,
			Got:   fmt.Sprintf("greedy=%.4g best-baseline=%.4g", strategies["greedy"], best),
		})
	}
	return out
}
