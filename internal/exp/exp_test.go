package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/gen"
)

// fastConfig keeps harness tests quick: tiny scale, small sweeps, loose
// epsilon, tight caps.
func fastConfig() Config {
	return Config{
		Scale:      gen.ScaleTiny,
		Seed:       1,
		KValues:    []int{1, 5},
		EpsValues:  []float64{0.3, 0.4},
		Epsilon:    0.3,
		CelfR:      20,
		RISCostCap: 200_000,
		MCSamples:  500,
	}
}

func TestIDsComplete(t *testing.T) {
	want := []string{
		"abl-epsprime", "abl-maxcover", "abl-refine", "abl-spill", "abl-workers",
		"compete", "dist",
		"fig10", "fig11", "fig12", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"headline", "table2",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("ids=%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids=%v, want %v", got, want)
		}
	}
}

func TestAblationRefine(t *testing.T) {
	cfg := fastConfig()
	cfg.KValues = []int{5}
	rep, err := Run("abl-refine", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows=%d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		ratio, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio < 1 {
			t.Fatalf("refinement increased theta: %v", row)
		}
	}
}

func TestAblationSpill(t *testing.T) {
	cfg := fastConfig()
	cfg.KValues = []int{3}
	rep, err := Run("abl-spill", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows=%d", len(rep.Rows))
	}
	a, _ := strconv.ParseFloat(rep.Rows[0][4], 64)
	b, _ := strconv.ParseFloat(rep.Rows[1][4], 64)
	if a <= 0 || b <= 0 || b < 0.7*a || b > 1.3*a {
		t.Fatalf("spread estimates diverge: in-memory %v vs spilled %v", a, b)
	}
}

func TestHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy Monte-Carlo sweep")
	}
	cfg := fastConfig()
	rep, err := Run("headline", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows=%d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		mc, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatal(err)
		}
		if mc < 50 {
			t.Fatalf("headline spread %v below seed count", mc)
		}
	}
}

func TestAblationEpsPrime(t *testing.T) {
	cfg := fastConfig()
	rep, err := Run("abl-epsprime", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("rows=%d", len(rep.Rows))
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", fastConfig()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTable2(t *testing.T) {
	rep, err := Run("table2", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("rows=%d, want 5 datasets", len(rep.Rows))
	}
	// Every synthetic n must match its profile at tiny scale.
	for _, row := range rep.Rows {
		p, err := gen.ProfileByName(row[0])
		if err != nil {
			t.Fatal(err)
		}
		n, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatal(err)
		}
		if n != p.NodesAt(gen.ScaleTiny) {
			t.Fatalf("%s: n=%d want %d", row[0], n, p.NodesAt(gen.ScaleTiny))
		}
	}
}

func TestFig3ShapeTIMvsBaselines(t *testing.T) {
	cfg := fastConfig()
	cfg.KValues = []int{5}
	rep, err := Run("fig3", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 models × 1 k × 4 algorithms.
	if len(rep.Rows) != 8 {
		t.Fatalf("rows=%d, want 8", len(rep.Rows))
	}
	times := map[string]float64{}
	for _, row := range rep.Rows {
		if row[0] == "IC" {
			sec, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "s"), 64)
			if err != nil {
				t.Fatal(err)
			}
			times[row[2]] = sec
		}
	}
	// The paper's ordering: TIM+ <= TIM << CELF++ (with our reduced R,
	// CELF++ must still be slower than TIM+).
	if !(times["TIM+"] <= times["TIM"]*3) {
		t.Fatalf("TIM+ %v unexpectedly slower than 3x TIM %v", times["TIM+"], times["TIM"])
	}
	if times["CELF++"] < times["TIM+"] {
		t.Fatalf("CELF++ %v faster than TIM+ %v — shape violated", times["CELF++"], times["TIM+"])
	}
}

func TestFig4BreakdownSumsToTotal(t *testing.T) {
	cfg := fastConfig()
	cfg.KValues = []int{1, 5} // non-default to skip the k-list override
	rep, err := Run("fig4", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		var parts [4]float64
		for i := 0; i < 4; i++ {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[2+i], "s"), 64)
			if err != nil {
				t.Fatal(err)
			}
			parts[i] = v
		}
		sum := parts[0] + parts[1] + parts[2]
		if sum > parts[3]*1.2+0.01 {
			t.Fatalf("phase sum %v exceeds total %v: %v", sum, parts[3], row)
		}
	}
}

func TestFig5KptOrdering(t *testing.T) {
	cfg := fastConfig()
	cfg.KValues = []int{5}
	rep, err := Run("fig5", cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]map[string]float64{}
	for _, row := range rep.Rows {
		key := row[0] + "/" + row[1]
		if series[key] == nil {
			series[key] = map[string]float64{}
		}
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		series[key][row[2]] = v
	}
	for key, vals := range series {
		if vals["KPT+"] < vals["KPT*"] {
			t.Fatalf("%s: KPT+ %v < KPT* %v", key, vals["KPT+"], vals["KPT*"])
		}
		// KPT bounds must not exceed the methods' measured spreads by
		// much (they lower-bound OPT).
		if vals["KPT+"] > vals["TIM+_spread"]*1.3 {
			t.Fatalf("%s: KPT+ %v above TIM+ spread %v", key, vals["KPT+"], vals["TIM+_spread"])
		}
	}
}

func TestFig7EpsilonMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy Monte-Carlo sweep")
	}
	cfg := fastConfig()
	cfg.EpsValues = []float64{0.2, 0.5}
	rep, err := Run("fig7", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity only: report exists for all datasets/models/eps values.
	want := len(largeProfiles) * 2 * len(cfg.EpsValues) * 2
	if len(rep.Rows) != want {
		t.Fatalf("rows=%d, want %d", len(rep.Rows), want)
	}
}

func TestFig9SpreadComparable(t *testing.T) {
	cfg := fastConfig()
	cfg.KValues = []int{5}
	rep, err := Run("fig9", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// TIM+ should be no worse than 0.8x IRIE anywhere at this scale.
	spreads := map[string]map[string]float64{}
	for _, row := range rep.Rows {
		if spreads[row[0]] == nil {
			spreads[row[0]] = map[string]float64{}
		}
		v, _ := strconv.ParseFloat(row[3], 64)
		spreads[row[0]][row[2]] = v
	}
	for ds, vals := range spreads {
		if vals["TIM+"] < 0.8*vals["IRIE"] {
			t.Fatalf("%s: TIM+ spread %v far below IRIE %v", ds, vals["TIM+"], vals["IRIE"])
		}
	}
}

func TestFig6RowsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy Monte-Carlo sweep")
	}
	cfg := fastConfig()
	cfg.KValues = []int{5}
	rep, err := Run("fig6", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 datasets × 2 models × 1 k × 2 variants.
	if len(rep.Rows) != 16 {
		t.Fatalf("rows=%d, want 16", len(rep.Rows))
	}
	findings, ok := CheckShape(rep)
	if !ok {
		t.Fatal("fig6 has no shape checks")
	}
	violated := 0
	for _, f := range findings {
		if !f.OK {
			violated++
			t.Logf("shape: %s (%s)", f.Claim, f.Got)
		}
	}
	// Timing noise at tiny scale can flip individual cells; require the
	// bulk of the claims to hold.
	if violated > len(findings)/4 {
		t.Fatalf("%d/%d fig6 shape claims violated", violated, len(findings))
	}
}

func TestFig8CrossoverDirection(t *testing.T) {
	cfg := fastConfig()
	cfg.KValues = []int{1, 50}
	rep, err := Run("fig8", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At k=1 IRIE should win on most datasets (the paper's small-k
	// region); collect the ratio direction.
	irieWinsAtK1, timWinsAtK50 := 0, 0
	times := map[string]map[string]float64{} // dataset/k -> algo -> secs
	for _, row := range rep.Rows {
		key := row[0] + "/" + row[1]
		if times[key] == nil {
			times[key] = map[string]float64{}
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "s"), 64)
		if err != nil {
			t.Fatal(err)
		}
		times[key][row[2]] = v
	}
	for key, algos := range times {
		if strings.HasSuffix(key, "/1") && algos["IRIE"] < algos["TIM+"] {
			irieWinsAtK1++
		}
		if strings.HasSuffix(key, "/50") && algos["TIM+"] < algos["IRIE"] {
			timWinsAtK50++
		}
	}
	if irieWinsAtK1 < 3 {
		t.Errorf("IRIE won at k=1 on only %d/4 datasets", irieWinsAtK1)
	}
	if timWinsAtK50 < 3 {
		t.Errorf("TIM+ won at k=50 on only %d/4 datasets", timWinsAtK50)
	}
}

func TestFig10TimPlusWinsAtLargeK(t *testing.T) {
	cfg := fastConfig()
	cfg.KValues = []int{50}
	rep, err := Run("fig10", cfg)
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	times := map[string]map[string]float64{}
	for _, row := range rep.Rows {
		if times[row[0]] == nil {
			times[row[0]] = map[string]float64{}
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "s"), 64)
		if err != nil {
			t.Fatal(err)
		}
		times[row[0]][row[2]] = v
	}
	for _, algos := range times {
		if algos["TIM+"] < algos["SIMPATH"] {
			wins++
		}
	}
	if wins < 3 {
		t.Errorf("TIM+ beat SIMPATH at k=50 on only %d/4 datasets", wins)
	}
}

func TestFig12MemoryPositive(t *testing.T) {
	cfg := fastConfig()
	cfg.KValues = []int{5}
	rep, err := Run("fig12", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5*2 {
		t.Fatalf("rows=%d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		mb, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if mb <= 0 {
			t.Fatalf("non-positive memory: %v", row)
		}
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{
		ID: "x", Title: "demo",
		Header: []string{"a", "b"},
	}
	rep.Append("hello", 3.14159)
	rep.Append(7, "world")
	var buf bytes.Buffer
	if _, err := rep.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "hello") || !strings.Contains(out, "3.142") {
		t.Fatalf("rendering: %q", out)
	}
	tsv := rep.TSV()
	if !strings.HasPrefix(tsv, "a\tb\n") {
		t.Fatalf("tsv: %q", tsv)
	}
}

func TestDistExperimentShape(t *testing.T) {
	cfg := fastConfig()
	rep, err := Run("dist", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One tim.Maximize reference row plus the four shard counts.
	if len(rep.Rows) != 5 {
		t.Fatalf("rows=%d", len(rep.Rows))
	}
	findings, ok := CheckShape(rep)
	if !ok {
		t.Fatal("dist must register a shape check")
	}
	for _, f := range findings {
		if !f.OK {
			t.Fatalf("shape violated: %s (%s)", f.Claim, f.Got)
		}
	}
}

func TestCompeteExperimentShape(t *testing.T) {
	cfg := fastConfig()
	rep, err := Run("compete", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Three strategies per k in {1, 5, 10}.
	if len(rep.Rows) != 9 {
		t.Fatalf("rows=%d", len(rep.Rows))
	}
	findings, ok := CheckShape(rep)
	if !ok {
		t.Fatal("compete must register a shape check")
	}
	for _, f := range findings {
		if !f.OK {
			t.Fatalf("shape violated: %s (%s)", f.Claim, f.Got)
		}
	}
	// Every adoption count must be positive: each party seeds at least
	// one node.
	for _, row := range rep.Rows {
		inc, err1 := strconv.ParseFloat(row[2], 64)
		ch, err2 := strconv.ParseFloat(row[3], 64)
		if err1 != nil || err2 != nil || inc < 1 || ch < 1 {
			t.Fatalf("implausible adoption counts in row %v", row)
		}
	}
}

func TestAblationWorkers(t *testing.T) {
	rep, err := Run("abl-workers", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Every row's wall time must be positive.
	for _, row := range rep.Rows {
		if sec, _ := strconv.ParseFloat(strings.TrimSuffix(row[len(row)-1], "s"), 64); sec <= 0 {
			t.Fatalf("non-positive wall time in %v", row)
		}
	}
}

func TestAblationMaxcover(t *testing.T) {
	rep, err := Run("abl-maxcover", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows=%d, want one per RR-set count", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		speedup, err := strconv.ParseFloat(row[4], 64)
		if err != nil || speedup <= 0 {
			t.Fatalf("bad speedup in %v: %v", row, err)
		}
	}
	// A coverage mismatch beyond tie-breaking would be reported as a
	// note by the experiment; surface any for the log.
	for _, note := range rep.Notes {
		t.Logf("note: %s", note)
	}
}

func TestFig11TimPlusNoWorseThanSimpath(t *testing.T) {
	cfg := fastConfig()
	cfg.KValues = []int{5}
	rep, err := Run("fig11", cfg)
	if err != nil {
		t.Fatal(err)
	}
	spreads := map[string]map[string]float64{}
	for _, row := range rep.Rows {
		if spreads[row[0]] == nil {
			spreads[row[0]] = map[string]float64{}
		}
		v, _ := strconv.ParseFloat(row[3], 64)
		spreads[row[0]][row[2]] = v
	}
	for ds, vals := range spreads {
		if vals["TIM+"] < 0.8*vals["SIMPATH"] {
			t.Fatalf("%s: TIM+ LT spread %v far below SIMPATH %v", ds, vals["TIM+"], vals["SIMPATH"])
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Epsilon != 0.1 || cfg.MCSamples != 10000 || cfg.CelfR != 200 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if len(cfg.KValues) == 0 || len(cfg.EpsValues) == 0 {
		t.Fatal("sweep defaults missing")
	}
	if cfg.RISCostCap != 20_000_000 {
		t.Fatalf("RIS cap default %d", cfg.RISCostCap)
	}
}
