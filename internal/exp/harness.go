// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§7) — Table 2 and Figures 3 through
// 12 — on the synthetic dataset profiles. Each experiment is addressed by
// the id used in EXPERIMENTS.md's per-experiment index ("table2", "fig3",
// ..., "fig12") and produces a Report whose rows mirror the series the
// paper plots.
//
// Scale and parameter knobs exist because the paper's runs take hours on
// a 48 GB machine; the defaults keep a full sweep tractable on a laptop
// while preserving the qualitative shape (who wins, by what order of
// magnitude, where the crossovers fall). EXPERIMENTS.md records
// paper-versus-measured for every experiment.
package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Config holds the harness knobs shared by all experiments.
type Config struct {
	// Scale selects dataset profile size (default ScaleTiny).
	Scale gen.Scale
	// Seed drives dataset generation and every algorithm.
	Seed uint64
	// Workers is passed through to parallel samplers (0 = all cores).
	Workers int

	// KValues is the seed-set size sweep (default depends on the
	// experiment; Figures 3-12 use {1,10,20,30,40,50}).
	KValues []int
	// EpsValues is Figure 7's ε sweep (default {0.1,0.2,0.3,0.4}).
	EpsValues []float64
	// Epsilon is the ε for experiments that fix it (default 0.1).
	Epsilon float64

	// CelfR is CELF++'s Monte-Carlo sample count (default 200 — the
	// paper uses 10000, which is impractical inside a benchmark loop;
	// EXPERIMENTS.md discusses the substitution).
	CelfR int
	// RISCostCap bounds RIS's examined nodes+edges (default 2e7). A
	// faithful τ frequently exceeds any practical budget — that is the
	// paper's point — so capped RIS rows are marked ">=" in reports.
	RISCostCap int64
	// MCSamples is the Monte-Carlo sample count for spread evaluation
	// in Figures 5, 9, 11 (default 10000; the paper uses 1e5).
	MCSamples int
}

func (c Config) withDefaults() Config {
	if c.KValues == nil {
		c.KValues = []int{1, 10, 20, 30, 40, 50}
	}
	if c.EpsValues == nil {
		c.EpsValues = []float64{0.1, 0.2, 0.3, 0.4}
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.1
	}
	if c.CelfR == 0 {
		c.CelfR = 200
	}
	if c.RISCostCap == 0 {
		c.RISCostCap = 20_000_000
	}
	if c.MCSamples == 0 {
		c.MCSamples = 10000
	}
	return c
}

// Report is one reproduced table or figure.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes document scaling substitutions and caps that applied.
	Notes []string
	// Elapsed is the wall-clock cost of producing the report.
	Elapsed time.Duration
}

// Append adds a row, stringifying each cell with %v.
func (r *Report) Append(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.4gs", v.Seconds())
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	r.Rows = append(r.Rows, row)
}

// WriteTo renders the report as an aligned text table.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s (%.3gs)\n", r.ID, r.Title, r.Elapsed.Seconds())
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, note := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", note)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// TSV renders the report as tab-separated values (header first).
func (r *Report) TSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Header, "\t"))
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		sb.WriteString(strings.Join(row, "\t"))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// runner is one experiment implementation.
type runner func(cfg Config) (*Report, error)

var registry = map[string]runner{
	"table2": runTable2,
	"fig3":   runFig3,
	"fig4":   runFig4,
	"fig5":   runFig5,
	"fig6":   runFig6,
	"fig7":   runFig7,
	"fig8":   runFig8,
	"fig9":   runFig9,
	"fig10":  runFig10,
	"fig11":  runFig11,
	"fig12":  runFig12,
}

// IDs returns all experiment ids in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(id string, cfg Config) (*Report, error) {
	fn, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", id, IDs())
	}
	cfg = cfg.withDefaults()
	start := time.Now()
	rep, err := fn(cfg)
	if err != nil {
		return nil, err
	}
	rep.ID = id
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// dataset generates a profile instance and applies the model weighting
// exactly as §7.1 prescribes: weighted cascade for IC, random-normalized
// weights for LT.
func dataset(name string, scale gen.Scale, model diffusion.Kind, seed uint64) (*graph.Graph, error) {
	p, err := gen.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	g := p.Generate(scale, seed)
	switch model {
	case diffusion.IC:
		graph.AssignWeightedCascade(g)
	case diffusion.LT:
		graph.AssignRandomNormalizedLT(g, rng.New(seed+1))
	default:
		return nil, fmt.Errorf("exp: unsupported model kind %v", model)
	}
	return g, nil
}

func modelOf(kind diffusion.Kind) diffusion.Model {
	if kind == diffusion.LT {
		return diffusion.NewLT()
	}
	return diffusion.NewIC()
}
