package exp

import (
	"fmt"
	"os"
	"time"

	"repro/internal/diffusion"
	"repro/internal/maxcover"
	"repro/internal/stats"
	"repro/internal/tim"
)

// Ablation experiments quantify the design decisions DESIGN.md §5 calls
// out. They are additional to the paper's artifacts and carry "abl-"
// ids.

func init() {
	registry["abl-epsprime"] = runAblationEpsPrime
	registry["abl-workers"] = runAblationWorkers
	registry["abl-maxcover"] = runAblationMaxcover
	registry["abl-refine"] = runAblationRefine
	registry["abl-spill"] = runAblationSpill
}

// runAblationEpsPrime sweeps Algorithm 3's accuracy parameter ε′ around
// the paper's heuristic choice 5·∛(ℓε²/(k+ℓ)) (§4.1) and reports the
// total RR sets generated (the quantity the heuristic approximately
// minimizes) plus wall time.
func runAblationEpsPrime(cfg Config) (*Report, error) {
	rep := &Report{
		Title:  "Ablation: Algorithm 3 epsilon' choice vs total work (NetHEPT profile, IC)",
		Header: []string{"eps_prime", "relative_to_heuristic", "theta", "seconds", "kpt_plus"},
	}
	g, err := dataset("nethept", cfg.Scale, diffusion.IC, cfg.Seed)
	if err != nil {
		return nil, err
	}
	model := modelOf(diffusion.IC)
	const k = 50
	base := stats.EpsPrime(k, cfg.Epsilon, 1)
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
		ep := base * mult
		if ep >= 1 {
			ep = 0.999
		}
		start := time.Now()
		res, err := tim.Maximize(g, model, tim.Options{
			K: k, Epsilon: cfg.Epsilon, EpsPrime: ep,
			Workers: cfg.Workers, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		rep.Append(ep, mult, res.Theta, time.Since(start), res.KptPlus)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("heuristic eps' = %.4f; multipliers far from 1 should cost more total time (more refinement RR sets below, looser KPT+ above)", base))
	return rep, nil
}

// runAblationWorkers sweeps sampling parallelism, validating the
// per-worker-stream design (DESIGN.md decision 3).
func runAblationWorkers(cfg Config) (*Report, error) {
	rep := &Report{
		Title:  "Ablation: RR sampling parallelism (NetHEPT profile, IC, k=50)",
		Header: []string{"workers", "seconds", "speedup_vs_1"},
	}
	g, err := dataset("nethept", cfg.Scale, diffusion.IC, cfg.Seed)
	if err != nil {
		return nil, err
	}
	model := modelOf(diffusion.IC)
	var serial float64
	for _, w := range []int{1, 2, 4, 8, 16} {
		start := time.Now()
		if _, err := tim.Maximize(g, model, tim.Options{
			K: 50, Epsilon: cfg.Epsilon, Workers: w, Seed: cfg.Seed,
		}); err != nil {
			return nil, err
		}
		secs := time.Since(start).Seconds()
		if w == 1 {
			serial = secs
		}
		rep.Append(w, time.Duration(secs*float64(time.Second)), serial/secs)
	}
	return rep, nil
}

// runAblationMaxcover compares the bucket greedy cover against the
// O(k·Σ|R|) naive reference on a realistic RR collection (DESIGN.md
// decision 2 — the paper's "linear-time implementation" remark).
func runAblationMaxcover(cfg Config) (*Report, error) {
	rep := &Report{
		Title:  "Ablation: linear-time greedy cover vs naive recompute",
		Header: []string{"rr_sets", "k", "bucket_seconds", "naive_seconds", "speedup"},
	}
	g, err := dataset("nethept", cfg.Scale, diffusion.IC, cfg.Seed)
	if err != nil {
		return nil, err
	}
	model := modelOf(diffusion.IC)
	for _, sets := range []int64{5000, 20000, 80000} {
		col := diffusion.SampleCollection(g, model, sets, diffusion.SampleOptions{
			Workers: cfg.Workers, Seed: cfg.Seed,
		})
		const k = 50
		start := time.Now()
		fast := maxcover.Greedy(g.N(), col, k)
		bucketSecs := time.Since(start).Seconds()
		start = time.Now()
		slow := maxcover.GreedyNaive(g.N(), col, k)
		naiveSecs := time.Since(start).Seconds()
		if fast.Covered != slow.Covered {
			// Tie-breaking may legitimately differ; coverage must not
			// differ more than ties can explain. Report rather than
			// fail.
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("coverage differs at %d sets: bucket %d vs naive %d (tie-break artifact)", sets, fast.Covered, slow.Covered))
		}
		rep.Append(sets, k,
			time.Duration(bucketSecs*float64(time.Second)),
			time.Duration(naiveSecs*float64(time.Second)),
			naiveSecs/bucketSecs)
	}
	return rep, nil
}

// runAblationRefine isolates Algorithm 3's contribution (the §4.1 claim:
// up to 100-fold, typically ≥3x on NetHEPT): node-selection θ and time
// with and without refinement.
func runAblationRefine(cfg Config) (*Report, error) {
	rep := &Report{
		Title:  "Ablation: TIM vs TIM+ refinement (theta reduction per model)",
		Header: []string{"model", "k", "tim_theta", "timplus_theta", "theta_ratio", "kpt_star", "kpt_plus"},
	}
	for _, kind := range []diffusion.Kind{diffusion.IC, diffusion.LT} {
		g, err := dataset("nethept", cfg.Scale, kind, cfg.Seed)
		if err != nil {
			return nil, err
		}
		model := modelOf(kind)
		for _, k := range cfg.KValues {
			plain, err := tim.Maximize(g, model, tim.Options{
				K: k, Epsilon: cfg.Epsilon, Variant: tim.TIM,
				Workers: cfg.Workers, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			plus, err := tim.Maximize(g, model, tim.Options{
				K: k, Epsilon: cfg.Epsilon, Variant: tim.TIMPlus,
				Workers: cfg.Workers, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			rep.Append(kind, k, plain.Theta, plus.Theta,
				float64(plain.Theta)/float64(plus.Theta),
				plus.KptStar, plus.KptPlus)
		}
	}
	return rep, nil
}

// runAblationSpill compares in-memory node selection with the
// out-of-core spill path (the §8 future-work extension): wall time and
// resident-versus-disk bytes.
func runAblationSpill(cfg Config) (*Report, error) {
	rep := &Report{
		Title:  "Ablation: in-memory vs out-of-core node selection (NetHEPT profile, IC)",
		Header: []string{"k", "mode", "seconds", "bytes_mb", "spread_est"},
	}
	g, err := dataset("nethept", cfg.Scale, diffusion.IC, cfg.Seed)
	if err != nil {
		return nil, err
	}
	model := modelOf(diffusion.IC)
	for _, k := range cfg.KValues {
		start := time.Now()
		inMem, err := tim.Maximize(g, model, tim.Options{
			K: k, Epsilon: cfg.Epsilon, Workers: cfg.Workers, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		rep.Append(k, "in-memory", time.Since(start),
			float64(inMem.MemoryBytes)/(1<<20), inMem.SpreadEstimate)

		start = time.Now()
		spilled, err := tim.Maximize(g, model, tim.Options{
			K: k, Epsilon: cfg.Epsilon, Workers: cfg.Workers, Seed: cfg.Seed,
			SpillDir: os.TempDir(),
		})
		if err != nil {
			return nil, err
		}
		rep.Append(k, "spilled", time.Since(start),
			float64(spilled.MemoryBytes)/(1<<20), spilled.SpreadEstimate)
	}
	rep.Notes = append(rep.Notes,
		"spilled bytes_mb is the on-disk footprint; resident memory drops to O(n) counters + theta/8 bitmap bits",
		"expected: identical spread estimates within noise; spilled wall time grows with k (k+1 sequential passes)")
	return rep, nil
}
