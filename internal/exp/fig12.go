package exp

import (
	"fmt"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/tim"
)

// runFig12 reproduces Figure 12 (memory consumption of TIM+ vs k, IC and
// LT, all five datasets). Memory is the bytes held by the node-selection
// RR collection — the dominant cost per §7.4 — plus the graph itself,
// reported separately.
func runFig12(cfg Config) (*Report, error) {
	rep := &Report{
		Title:  "Memory of TIM+ vs k (RR collection bytes; IC and LT)",
		Header: []string{"dataset", "model", "k", "rr_mb", "graph_mb", "theta"},
	}
	for _, p := range gen.Profiles() {
		for _, kind := range []diffusion.Kind{diffusion.IC, diffusion.LT} {
			g, err := dataset(p.Name, cfg.Scale, kind, cfg.Seed)
			if err != nil {
				return nil, err
			}
			model := modelOf(kind)
			graphMB := float64(g.MemoryFootprint()) / (1 << 20)
			for _, k := range cfg.KValues {
				res, err := tim.Maximize(g, model, tim.Options{
					K: k, Epsilon: cfg.Epsilon, Variant: tim.TIMPlus,
					Workers: cfg.Workers, Seed: cfg.Seed,
				})
				if err != nil {
					return nil, err
				}
				rep.Append(p.Name, kind, k,
					float64(res.MemoryBytes)/(1<<20), graphMB, res.Theta)
			}
		}
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("epsilon=%v (adversarially small per §7.4: R's size is proportional to 1/eps^2)", cfg.Epsilon),
		"expected shape: IC >= LT per dataset; memory grows with n but inverts where KPT+ is large (the paper's NetHEPT > Epinions inversion)")
	return rep, nil
}
