package exp

import (
	"fmt"
	"strconv"
	"strings"
)

// Shape checks: programmatic assertions of each figure's qualitative
// claim ("who wins, by roughly what factor, where crossovers fall").
// EXPERIMENTS.md narrates these; CheckShape makes them executable so a
// regression that flips a figure's conclusion fails loudly — the LT
// weight-normalization bug documented in EXPERIMENTS.md is exactly the
// kind of failure these catch.

// ShapeFinding is one checked claim.
type ShapeFinding struct {
	Claim string
	OK    bool
	Got   string
}

// CheckShape evaluates the registered claims for a report. Experiments
// without registered claims return (nil, false).
func CheckShape(rep *Report) ([]ShapeFinding, bool) {
	check, ok := shapeChecks[rep.ID]
	if !ok {
		return nil, false
	}
	return check(rep), true
}

var shapeChecks = map[string]func(*Report) []ShapeFinding{
	"fig3":  checkFig3Shape,
	"fig5":  checkFig5Shape,
	"fig6":  checkFig6Shape,
	"fig12": checkFig12Shape,
	"dist":  checkDistShape,
}

// cell parses a numeric cell, tolerating the "1.23s" duration suffix.
func cell(row []string, i int) float64 {
	v, err := strconv.ParseFloat(strings.TrimSuffix(row[i], "s"), 64)
	if err != nil {
		return 0
	}
	return v
}

// checkFig3Shape: per (model, k), TIM+ <= TIM (with 1.5x slack for
// timing noise) and CELF++ slower than TIM+.
func checkFig3Shape(rep *Report) []ShapeFinding {
	type key struct{ model, k string }
	times := map[key]map[string]float64{}
	for _, row := range rep.Rows {
		k := key{row[0], row[1]}
		if times[k] == nil {
			times[k] = map[string]float64{}
		}
		times[k][row[2]] = cell(row, 3)
	}
	var out []ShapeFinding
	for k, algos := range times {
		out = append(out, ShapeFinding{
			Claim: fmt.Sprintf("%s k=%s: TIM+ <= 1.5x TIM", k.model, k.k),
			OK:    algos["TIM+"] <= 1.5*algos["TIM"],
			Got:   fmt.Sprintf("TIM+=%.3gs TIM=%.3gs", algos["TIM+"], algos["TIM"]),
		})
		out = append(out, ShapeFinding{
			Claim: fmt.Sprintf("%s k=%s: CELF++ slower than TIM+", k.model, k.k),
			OK:    algos["CELF++"] >= algos["TIM+"],
			Got:   fmt.Sprintf("CELF++=%.3gs TIM+=%.3gs", algos["CELF++"], algos["TIM+"]),
		})
	}
	return out
}

// checkFig5Shape: per (model, k), the guaranteed methods' spreads agree
// within 5%, KPT* <= KPT+ <= TIM+ spread, and per k the LT TIM+ spread
// is at least the IC TIM+ spread (LT dominates weighted-cascade IC).
func checkFig5Shape(rep *Report) []ShapeFinding {
	vals := map[string]map[string]float64{} // model/k -> series -> value
	for _, row := range rep.Rows {
		mk := row[0] + "/" + row[1]
		if vals[mk] == nil {
			vals[mk] = map[string]float64{}
		}
		vals[mk][row[2]] = cell(row, 3)
	}
	var out []ShapeFinding
	for mk, series := range vals {
		timPlus := series["TIM+_spread"]
		tim := series["TIM_spread"]
		ris := series["RIS_spread"]
		out = append(out, ShapeFinding{
			Claim: mk + ": TIM/TIM+/RIS spreads within 5%",
			OK: tim >= 0.95*timPlus && tim <= 1.05*timPlus &&
				ris >= 0.95*timPlus && ris <= 1.05*timPlus,
			Got: fmt.Sprintf("TIM+=%.4g TIM=%.4g RIS=%.4g", timPlus, tim, ris),
		})
		out = append(out, ShapeFinding{
			Claim: mk + ": KPT* <= KPT+ <= 1.1x spread",
			OK:    series["KPT*"] <= series["KPT+"] && series["KPT+"] <= 1.1*timPlus,
			Got:   fmt.Sprintf("KPT*=%.4g KPT+=%.4g spread=%.4g", series["KPT*"], series["KPT+"], timPlus),
		})
	}
	// LT >= 0.9x IC per k.
	for mk, series := range vals {
		if !strings.HasPrefix(mk, "LT/") {
			continue
		}
		k := strings.TrimPrefix(mk, "LT/")
		ic, ok := vals["IC/"+k]
		if !ok {
			continue
		}
		out = append(out, ShapeFinding{
			Claim: "k=" + k + ": LT spread >= 0.9x IC spread",
			OK:    series["TIM+_spread"] >= 0.9*ic["TIM+_spread"],
			Got:   fmt.Sprintf("LT=%.4g IC=%.4g", series["TIM+_spread"], ic["TIM+_spread"]),
		})
	}
	return out
}

// checkFig6Shape: per dataset/model/k, TIM+ <= 1.5x TIM; per dataset/k,
// LT TIM+ <= IC TIM+ (LT sampling is cheaper).
func checkFig6Shape(rep *Report) []ShapeFinding {
	type key struct{ ds, model, k string }
	times := map[key]map[string]float64{}
	for _, row := range rep.Rows {
		k := key{row[0], row[1], row[2]}
		if times[k] == nil {
			times[k] = map[string]float64{}
		}
		times[k][row[3]] = cell(row, 4)
	}
	var out []ShapeFinding
	for k, algos := range times {
		out = append(out, ShapeFinding{
			Claim: fmt.Sprintf("%s %s k=%s: TIM+ <= 1.5x TIM", k.ds, k.model, k.k),
			OK:    algos["TIM+"] <= 1.5*algos["TIM"],
			Got:   fmt.Sprintf("TIM+=%.3gs TIM=%.3gs", algos["TIM+"], algos["TIM"]),
		})
	}
	for k, algos := range times {
		if k.model != "LT" {
			continue
		}
		ic, ok := times[key{k.ds, "IC", k.k}]
		if !ok {
			continue
		}
		out = append(out, ShapeFinding{
			Claim: fmt.Sprintf("%s k=%s: LT TIM+ <= 1.2x IC TIM+", k.ds, k.k),
			OK:    algos["TIM+"] <= 1.2*ic["TIM+"],
			Got:   fmt.Sprintf("LT=%.3gs IC=%.3gs", algos["TIM+"], ic["TIM+"]),
		})
	}
	return out
}

// checkFig12Shape: per dataset/k, IC memory >= 0.9x LT memory (the
// paper's IC > LT claim with noise slack).
func checkFig12Shape(rep *Report) []ShapeFinding {
	type key struct{ ds, k string }
	mem := map[key]map[string]float64{}
	for _, row := range rep.Rows {
		k := key{row[0], row[2]}
		if mem[k] == nil {
			mem[k] = map[string]float64{}
		}
		mem[k][row[1]] = cell(row, 3)
	}
	var out []ShapeFinding
	for k, models := range mem {
		out = append(out, ShapeFinding{
			Claim: fmt.Sprintf("%s k=%s: IC memory >= 0.9x LT memory", k.ds, k.k),
			OK:    models["IC"] >= 0.9*models["LT"],
			Got:   fmt.Sprintf("IC=%.4gMB LT=%.4gMB", models["IC"], models["LT"]),
		})
	}
	return out
}

// checkDistShape: the distributed rows (machines 1,2,4,8) must show the
// trade the distribution buys — per-shard graph memory strictly falling
// with P, network bytes rising with P — while θ and the spread estimate
// stay invariant in P.
func checkDistShape(rep *Report) []ShapeFinding {
	type row struct {
		machines       string
		shardMB, netMB float64
		theta, spread  float64
	}
	var rows []row
	for _, r := range rep.Rows {
		if strings.Contains(r[0], "tim.Maximize") {
			continue // single-machine reference row
		}
		rows = append(rows, row{
			machines: r[0],
			shardMB:  cell(r, 2),
			netMB:    cell(r, 4),
			theta:    cell(r, 6),
			spread:   cell(r, 7),
		})
	}
	var out []ShapeFinding
	for i := 1; i < len(rows); i++ {
		out = append(out, ShapeFinding{
			Claim: fmt.Sprintf("P=%s: per-shard graph memory below P=%s", rows[i].machines, rows[i-1].machines),
			OK:    rows[i].shardMB < rows[i-1].shardMB,
			Got:   fmt.Sprintf("%.4g MB vs %.4g MB", rows[i].shardMB, rows[i-1].shardMB),
		})
		out = append(out, ShapeFinding{
			Claim: fmt.Sprintf("P=%s: network bytes above P=%s", rows[i].machines, rows[i-1].machines),
			OK:    rows[i].netMB > rows[i-1].netMB,
			Got:   fmt.Sprintf("%.4g MB vs %.4g MB", rows[i].netMB, rows[i-1].netMB),
		})
		out = append(out, ShapeFinding{
			Claim: fmt.Sprintf("P=%s: theta and spread invariant vs P=%s", rows[i].machines, rows[i-1].machines),
			OK:    rows[i].theta == rows[i-1].theta && rows[i].spread == rows[i-1].spread,
			Got:   fmt.Sprintf("theta %.0f/%.0f spread %.4g/%.4g", rows[i].theta, rows[i-1].theta, rows[i].spread, rows[i-1].spread),
		})
	}
	return out
}
