package exp

import (
	"testing"
)

func TestShapeFig3(t *testing.T) {
	cfg := fastConfig()
	cfg.KValues = []int{10}
	rep, err := Run("fig3", cfg)
	if err != nil {
		t.Fatal(err)
	}
	findings, ok := CheckShape(rep)
	if !ok || len(findings) == 0 {
		t.Fatal("no shape checks ran")
	}
	for _, f := range findings {
		if !f.OK {
			t.Errorf("shape violated: %s (%s)", f.Claim, f.Got)
		}
	}
}

func TestShapeFig5(t *testing.T) {
	cfg := fastConfig()
	cfg.KValues = []int{10}
	cfg.MCSamples = 4000
	rep, err := Run("fig5", cfg)
	if err != nil {
		t.Fatal(err)
	}
	findings, ok := CheckShape(rep)
	if !ok {
		t.Fatal("no shape checks registered for fig5")
	}
	for _, f := range findings {
		if !f.OK {
			t.Errorf("shape violated: %s (%s)", f.Claim, f.Got)
		}
	}
}

func TestShapeFig12(t *testing.T) {
	cfg := fastConfig()
	cfg.KValues = []int{10}
	rep, err := Run("fig12", cfg)
	if err != nil {
		t.Fatal(err)
	}
	findings, ok := CheckShape(rep)
	if !ok {
		t.Fatal("no shape checks registered for fig12")
	}
	for _, f := range findings {
		if !f.OK {
			t.Errorf("shape violated: %s (%s)", f.Claim, f.Got)
		}
	}
}

func TestShapeUnregistered(t *testing.T) {
	rep := &Report{ID: "table2"}
	if _, ok := CheckShape(rep); ok {
		t.Fatal("table2 should have no shape checks")
	}
}

func TestShapeSyntheticViolation(t *testing.T) {
	// A hand-built fig3 report where CELF++ is faster than TIM+ must be
	// flagged.
	rep := &Report{ID: "fig3", Header: []string{"model", "k", "algorithm", "seconds", "capped"}}
	rep.Append("IC", 10, "TIM", "1.0s", false)
	rep.Append("IC", 10, "TIM+", "0.5s", false)
	rep.Append("IC", 10, "RIS", "2.0s", true)
	rep.Append("IC", 10, "CELF++", "0.1s", false)
	findings, ok := CheckShape(rep)
	if !ok {
		t.Fatal("no checks ran")
	}
	violated := false
	for _, f := range findings {
		if !f.OK {
			violated = true
		}
	}
	if !violated {
		t.Fatal("synthetic violation not detected")
	}
}
