package exp

import (
	"fmt"
	"time"

	"repro/internal/algo/greedy"
	"repro/internal/algo/ris"
	"repro/internal/diffusion"
	"repro/internal/spread"
	"repro/internal/tim"
)

// runFig3 reproduces Figure 3 (computation time vs k on NetHEPT, IC and
// LT): TIM, TIM+, RIS, and CELF++.
func runFig3(cfg Config) (*Report, error) {
	rep := &Report{
		Title:  "Running time vs k on NetHEPT profile (TIM, TIM+, RIS, CELF++)",
		Header: []string{"model", "k", "algorithm", "seconds", "capped"},
	}
	for _, kind := range []diffusion.Kind{diffusion.IC, diffusion.LT} {
		g, err := dataset("nethept", cfg.Scale, kind, cfg.Seed)
		if err != nil {
			return nil, err
		}
		model := modelOf(kind)
		for _, k := range cfg.KValues {
			for _, variant := range []tim.Algorithm{tim.TIM, tim.TIMPlus} {
				start := time.Now()
				_, err := tim.Maximize(g, model, tim.Options{
					K: k, Epsilon: cfg.Epsilon, Variant: variant,
					Workers: cfg.Workers, Seed: cfg.Seed,
				})
				if err != nil {
					return nil, err
				}
				rep.Append(kind, k, variant.String(), time.Since(start), false)
			}
			start := time.Now()
			risRes, err := ris.Select(g, model, ris.Options{
				K: k, Epsilon: cfg.Epsilon, CostCap: cfg.RISCostCap,
				Workers: cfg.Workers, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			rep.Append(kind, k, "RIS", time.Since(start), risRes.Capped)

			start = time.Now()
			_, err = greedy.Select(g, model, k, greedy.Options{
				R: cfg.CelfR, Workers: cfg.Workers, Seed: cfg.Seed,
				Strategy: greedy.CELFPlusPlus,
			})
			if err != nil {
				return nil, err
			}
			rep.Append(kind, k, "CELF++", time.Since(start), false)
		}
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("CELF++ runs with r=%d Monte-Carlo samples instead of the paper's 10000 — multiply its column by ~%.0fx for a faithful comparison; it is the slowest either way", cfg.CelfR, 10000/float64(cfg.CelfR)),
		fmt.Sprintf("RIS rows with capped=true hit the %d-cost cap before reaching tau; their true faithful time is larger (lower bound)", cfg.RISCostCap))
	return rep, nil
}

// runFig4 reproduces Figure 4 (per-phase time breakdown of TIM and TIM+
// on NetHEPT, IC).
func runFig4(cfg Config) (*Report, error) {
	rep := &Report{
		Title:  "Breakdown of computation time on NetHEPT profile (IC)",
		Header: []string{"algorithm", "k", "alg2_param_est_s", "alg3_refine_s", "alg1_node_sel_s", "total_s"},
	}
	g, err := dataset("nethept", cfg.Scale, diffusion.IC, cfg.Seed)
	if err != nil {
		return nil, err
	}
	model := modelOf(diffusion.IC)
	ks := cfg.KValues
	if len(ks) == 6 && ks[0] == 1 { // default sweep: use the paper's fig4 k list
		ks = []int{1, 2, 5, 10, 20, 30, 40, 50}
	}
	for _, variant := range []tim.Algorithm{tim.TIM, tim.TIMPlus} {
		for _, k := range ks {
			res, err := tim.Maximize(g, model, tim.Options{
				K: k, Epsilon: cfg.Epsilon, Variant: variant,
				Workers: cfg.Workers, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			rep.Append(variant.String(), k,
				res.Timings.KptEstimation, res.Timings.Refinement,
				res.Timings.NodeSelection, res.Timings.Total)
		}
	}
	return rep, nil
}

// runFig5 reproduces Figure 5 (expected spreads of all methods plus the
// lower bounds KPT* and KPT+ on NetHEPT, IC and LT).
func runFig5(cfg Config) (*Report, error) {
	rep := &Report{
		Title:  "Expected spread and KPT bounds vs k on NetHEPT profile",
		Header: []string{"model", "k", "series", "value"},
	}
	for _, kind := range []diffusion.Kind{diffusion.IC, diffusion.LT} {
		g, err := dataset("nethept", cfg.Scale, kind, cfg.Seed)
		if err != nil {
			return nil, err
		}
		model := modelOf(kind)
		for _, k := range cfg.KValues {
			evalSpread := func(seeds []uint32) float64 {
				return spread.Estimate(g, model, seeds, spread.Options{
					Samples: cfg.MCSamples, Workers: cfg.Workers, Seed: cfg.Seed + 999,
				})
			}
			plus, err := tim.Maximize(g, model, tim.Options{
				K: k, Epsilon: cfg.Epsilon, Variant: tim.TIMPlus,
				Workers: cfg.Workers, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			rep.Append(kind, k, "TIM+_spread", evalSpread(plus.Seeds))
			rep.Append(kind, k, "KPT*", plus.KptStar)
			rep.Append(kind, k, "KPT+", plus.KptPlus)

			plain, err := tim.Maximize(g, model, tim.Options{
				K: k, Epsilon: cfg.Epsilon, Variant: tim.TIM,
				Workers: cfg.Workers, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			rep.Append(kind, k, "TIM_spread", evalSpread(plain.Seeds))

			risRes, err := ris.Select(g, model, ris.Options{
				K: k, Epsilon: cfg.Epsilon, CostCap: cfg.RISCostCap,
				Workers: cfg.Workers, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			rep.Append(kind, k, "RIS_spread", evalSpread(risRes.Seeds))

			celf, err := greedy.Select(g, model, k, greedy.Options{
				R: cfg.CelfR, Workers: cfg.Workers, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			rep.Append(kind, k, "CELF++_spread", evalSpread(celf.Seeds))
		}
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("spreads are %d-sample Monte-Carlo estimates (paper: 1e5)", cfg.MCSamples),
		"expected shape: spreads of all four methods indistinguishable; KPT+ >= KPT*, typically by 3x or more")
	return rep, nil
}
