package repro

// One benchmark per table/figure of the paper's evaluation (§7). Each
// bench regenerates its artifact through the internal/exp harness at the
// tiny dataset scale (benchmarks must terminate in minutes, not the
// paper's hours — see EXPERIMENTS.md for the scaling discussion and for
// small/full-scale runs via cmd/experiments). The report rows — the same
// series the paper plots — are printed once per benchmark run.
//
// Usage:
//
//	go test -bench=. -benchmem            # all artifacts
//	go test -bench=BenchmarkFig3 -v       # one figure
//	go test -bench=. -args -bench.scale=small   (via cmd/experiments instead)

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/exp"
	"repro/internal/gen"
)

// benchConfig keeps every artifact reproducible inside a benchmark loop:
// tiny profiles, trimmed sweeps, capped baselines.
func benchConfig() exp.Config {
	return exp.Config{
		Scale:      gen.ScaleTiny,
		Seed:       1,
		KValues:    []int{1, 10, 50},
		EpsValues:  []float64{0.1, 0.2, 0.3, 0.4},
		Epsilon:    0.2,
		CelfR:      50,
		RISCostCap: 2_000_000,
		MCSamples:  2000,
	}
}

var printOnce sync.Map // experiment id -> *sync.Once

// runExperiment executes the experiment once per b.N iteration and prints
// its table on the first run of the process.
func runExperiment(b *testing.B, id string, cfg exp.Config) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := exp.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		onceAny, _ := printOnce.LoadOrStore(id, &sync.Once{})
		onceAny.(*sync.Once).Do(func() {
			fmt.Fprintln(os.Stderr)
			if _, err := rep.WriteTo(os.Stderr); err != nil {
				b.Error(err)
			}
		})
	}
}

// BenchmarkTable2Datasets regenerates Table 2 (dataset characteristics).
func BenchmarkTable2Datasets(b *testing.B) {
	runExperiment(b, "table2", benchConfig())
}

// BenchmarkFig3Runtime regenerates Figure 3 (running time vs k of TIM,
// TIM+, RIS, CELF++ on the NetHEPT profile, IC and LT).
func BenchmarkFig3Runtime(b *testing.B) {
	runExperiment(b, "fig3", benchConfig())
}

// BenchmarkFig4Breakdown regenerates Figure 4 (per-phase time breakdown
// of TIM and TIM+ on the NetHEPT profile, IC).
func BenchmarkFig4Breakdown(b *testing.B) {
	runExperiment(b, "fig4", benchConfig())
}

// BenchmarkFig5SpreadKPT regenerates Figure 5 (expected spreads and the
// KPT*/KPT+ lower bounds on the NetHEPT profile).
func BenchmarkFig5SpreadKPT(b *testing.B) {
	runExperiment(b, "fig5", benchConfig())
}

// BenchmarkFig6LargeRuntime regenerates Figure 6 (running time vs k of
// TIM and TIM+ on the Epinions/DBLP/LiveJournal/Twitter profiles).
func BenchmarkFig6LargeRuntime(b *testing.B) {
	runExperiment(b, "fig6", benchConfig())
}

// BenchmarkFig7Epsilon regenerates Figure 7 (running time vs ε on the
// large profiles, k=50).
func BenchmarkFig7Epsilon(b *testing.B) {
	runExperiment(b, "fig7", benchConfig())
}

// BenchmarkFig8TimVsIrie regenerates Figure 8 (running time vs k of TIM+
// with ε=ℓ=1 versus IRIE, IC).
func BenchmarkFig8TimVsIrie(b *testing.B) {
	runExperiment(b, "fig8", benchConfig())
}

// BenchmarkFig9SpreadIrie regenerates Figure 9 (expected spread vs k of
// TIM+ versus IRIE, IC).
func BenchmarkFig9SpreadIrie(b *testing.B) {
	runExperiment(b, "fig9", benchConfig())
}

// BenchmarkFig10TimVsSimpath regenerates Figure 10 (running time vs k of
// TIM+ with ε=ℓ=1 versus SIMPATH, LT).
func BenchmarkFig10TimVsSimpath(b *testing.B) {
	runExperiment(b, "fig10", benchConfig())
}

// BenchmarkFig11SpreadSimpath regenerates Figure 11 (expected spread vs k
// of TIM+ versus SIMPATH, LT).
func BenchmarkFig11SpreadSimpath(b *testing.B) {
	runExperiment(b, "fig11", benchConfig())
}

// BenchmarkFig12Memory regenerates Figure 12 (memory consumption of TIM+
// vs k on all five profiles, IC and LT).
func BenchmarkFig12Memory(b *testing.B) {
	runExperiment(b, "fig12", benchConfig())
}

// BenchmarkHeadline regenerates the abstract's headline configuration
// (TIM+, k=50, ε=0.2, ℓ=1 on the Twitter profile, both models).
func BenchmarkHeadline(b *testing.B) {
	runExperiment(b, "headline", benchConfig())
}

// Ablation benches quantify the design decisions DESIGN.md §5 calls out
// (beyond the paper's own artifacts).

// BenchmarkAblationEpsPrime sweeps Algorithm 3's ε′ around the §4.1
// heuristic choice.
func BenchmarkAblationEpsPrime(b *testing.B) {
	runExperiment(b, "abl-epsprime", benchConfig())
}

// BenchmarkAblationWorkers sweeps sampling parallelism.
func BenchmarkAblationWorkers(b *testing.B) {
	runExperiment(b, "abl-workers", benchConfig())
}

// BenchmarkAblationMaxcover compares the linear-time greedy cover with
// the naive recompute reference.
func BenchmarkAblationMaxcover(b *testing.B) {
	runExperiment(b, "abl-maxcover", benchConfig())
}

// BenchmarkAblationRefine isolates Algorithm 3's θ reduction.
func BenchmarkAblationRefine(b *testing.B) {
	runExperiment(b, "abl-refine", benchConfig())
}

// BenchmarkAblationSpill compares in-memory and out-of-core selection.
func BenchmarkAblationSpill(b *testing.B) {
	runExperiment(b, "abl-spill", benchConfig())
}

// BenchmarkDistributed runs the simulated distributed TIM+ (§8 future
// work) across shard counts: per-shard memory vs network traffic.
func BenchmarkDistributed(b *testing.B) {
	runExperiment(b, "dist", benchConfig())
}

// BenchmarkCompetitive runs the §8 competitive extension: the
// follower's-problem greedy against next-degree and copycat baselines.
func BenchmarkCompetitive(b *testing.B) {
	runExperiment(b, "compete", benchConfig())
}

// BenchmarkMaximizeTimPlusNetHEPT measures a single headline TIM+ run
// (k=50, ε=0.1) on the NetHEPT profile — the configuration of the
// paper's abstract, scaled.
func BenchmarkMaximizeTimPlusNetHEPT(b *testing.B) {
	g, err := GenerateDataset("nethept", ScaleTiny, 1)
	if err != nil {
		b.Fatal(err)
	}
	UseWeightedCascade(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Maximize(g, IC(), Options{K: 50, Epsilon: 0.1, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaximizeTimPlusLT is the LT counterpart of the headline bench.
func BenchmarkMaximizeTimPlusLT(b *testing.B) {
	g, err := GenerateDataset("nethept", ScaleTiny, 1)
	if err != nil {
		b.Fatal(err)
	}
	UseRandomLTWeights(g, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Maximize(g, LT(), Options{K: 50, Epsilon: 0.1, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
