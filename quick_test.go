package repro

// Property-based tests over the public API: for arbitrary (seeded)
// graphs and valid options, the documented invariants must hold. These
// complement the per-package unit tests with whole-stack checks.

import (
	"bytes"
	"testing"
	"testing/quick"
)

// arbitraryGraph builds a random weighted graph from a seed, cycling
// through generator families and weighting schemes.
func arbitraryGraph(seed uint64) *Graph {
	n := 20 + int(seed%5)*30
	var g *Graph
	switch seed % 4 {
	case 0:
		g = GenerateErdosRenyi(n, n*4, seed)
	case 1:
		g = GenerateBarabasiAlbert(n, 2, seed)
	case 2:
		g = GenerateChungLu(n, n*5, 2.4, 2.1, seed)
	default:
		g = GenerateForestFire(n, 0.3, 0.3, seed)
	}
	switch seed % 3 {
	case 0:
		UseWeightedCascade(g)
	case 1:
		_ = UseUniformIC(g, 0.1)
	default:
		UseTrivalency(g, seed)
	}
	return g
}

// TestMaximizeInvariantsQuick: for any valid instance, Maximize returns
// exactly K distinct in-range seeds, sane diagnostics, and a spread
// estimate within [K·something, n].
func TestMaximizeInvariantsQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g := arbitraryGraph(seed)
		k := 1 + int(seed%7)
		if k > g.N() {
			k = g.N()
		}
		res, err := Maximize(g, IC(), Options{K: k, Epsilon: 0.4, Seed: seed})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if len(res.Seeds) != k {
			return false
		}
		seen := map[uint32]bool{}
		for _, s := range res.Seeds {
			if int(s) >= g.N() || seen[s] {
				return false
			}
			seen[s] = true
		}
		if res.KptPlus < res.KptStar || res.KptStar < 1 {
			return false
		}
		if res.Theta < 1 || res.CoverageFraction < 0 || res.CoverageFraction > 1 {
			return false
		}
		return res.SpreadEstimate <= float64(g.N())+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestSpreadBoundsQuick: Monte-Carlo spread is bounded by [|S|, n] and
// is monotone under superset seeds (within noise allowance).
func TestSpreadBoundsQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g := arbitraryGraph(seed)
		s1 := []uint32{uint32(seed % uint64(g.N()))}
		s2 := append([]uint32{}, s1[0], uint32((seed+7)%uint64(g.N())))
		opts := SpreadOptions{Samples: 3000, Seed: seed}
		sp1 := EstimateSpread(g, IC(), s1, opts)
		sp2 := EstimateSpread(g, IC(), s2, opts)
		if sp1 < 1 || sp1 > float64(g.N()) {
			return false
		}
		distinct := 2.0
		if s2[0] == s2[1] {
			distinct = 1
		}
		if sp2 < distinct-1e-9 || sp2 > float64(g.N()) {
			return false
		}
		return sp2 >= sp1-0.5 // monotone up to MC noise
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestSCCPartitionQuick: component sizes sum to n on arbitrary graphs.
func TestSCCPartitionQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g := arbitraryGraph(seed)
		scc := SCC(g)
		var total int32
		for _, s := range scc.Sizes {
			total += s
		}
		if int(total) != g.N() {
			return false
		}
		dag := CondenseSCC(g, scc)
		return SCC(dag).Count == dag.N() // condensation is a DAG
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceConsistencyQuick: a trace's spread equals its activation
// count, seeds are step 0, and every step is either 0 or one more than
// some earlier activation by its "By" node.
func TestTraceConsistencyQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g := arbitraryGraph(seed)
		seeds := []uint32{uint32(seed % uint64(g.N()))}
		tr := TraceCascade(g, IC(), seeds, seed)
		if tr.Spread() != len(tr.Activations) {
			return false
		}
		stepOf := map[uint32]int{}
		for _, a := range tr.Activations {
			stepOf[a.Node] = a.Step
		}
		for _, a := range tr.Activations {
			if a.Step == 0 {
				if a.By != a.Node {
					return false
				}
				continue
			}
			byStep, ok := stepOf[a.By]
			if !ok || a.Step != byStep+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestSerializationQuick: text and binary round trips preserve the edge
// multiset for arbitrary graphs.
func TestSerializationQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g := arbitraryGraph(seed)
		var text, bin bytes.Buffer
		if err := SaveEdgeList(&text, g); err != nil {
			return false
		}
		if err := SaveBinary(&bin, g); err != nil {
			return false
		}
		g2, err := LoadEdgeList(&text, false)
		if err != nil {
			return false
		}
		g3, err := LoadBinary(&bin)
		if err != nil {
			return false
		}
		return g2.M() == g.M() && g3.M() == g.M() && g2.N() == g.N() && g3.N() == g.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
