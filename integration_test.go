package repro

// Cross-algorithm integration tests: every selector in the library runs
// on one shared realistic instance, and the guaranteed methods must not
// lose to any baseline by more than Monte-Carlo noise. This is the
// library-level statement of the paper's Figures 5, 9, and 11.

import (
	"testing"
)

func icInstance(t testing.TB) *Graph {
	t.Helper()
	g := GenerateChungLu(3000, 21000, 2.4, 2.1, 77)
	UseWeightedCascade(g)
	return g
}

func TestAllAlgorithmsQualityOrderingIC(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	g := icInstance(t)
	model := IC()
	const k = 10
	eval := func(seeds []uint32) float64 {
		return EstimateSpread(g, model, seeds, SpreadOptions{Samples: 20000, Seed: 1})
	}

	spreads := map[string]float64{}

	timPlus, err := Maximize(g, model, Options{K: k, Epsilon: 0.15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	spreads["tim+"] = eval(timPlus.Seeds)

	tim, err := Maximize(g, model, Options{K: k, Epsilon: 0.15, Variant: TIM, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	spreads["tim"] = eval(tim.Seeds)

	ris, err := RISSelect(g, model, RISOptions{K: k, Epsilon: 0.4, CostCap: 30_000_000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	spreads["ris"] = eval(ris.Seeds)

	celf, err := GreedySelect(g, model, k, GreedyOptions{R: 300, Seed: 5, SpreadOracle: OracleSnapshots})
	if err != nil {
		t.Fatal(err)
	}
	spreads["celf++"] = eval(celf.Seeds)

	irie, err := IRIESelect(g, IRIEOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	spreads["irie"] = eval(irie.Seeds)

	deg, err := DegreeSelect(g, k)
	if err != nil {
		t.Fatal(err)
	}
	spreads["degree"] = eval(deg)

	rnd, err := RandomSelect(g, k, 6)
	if err != nil {
		t.Fatal(err)
	}
	spreads["random"] = eval(rnd)

	t.Logf("spreads: %v", spreads)

	best := 0.0
	for _, s := range spreads {
		if s > best {
			best = s
		}
	}
	// The guaranteed methods must be within 10% of the best of anything.
	for _, name := range []string{"tim+", "tim"} {
		if spreads[name] < 0.9*best {
			t.Errorf("%s spread %v below 90%% of best %v", name, spreads[name], best)
		}
	}
	// Random must be far below every informed method.
	if spreads["random"] > 0.5*spreads["tim+"] {
		t.Errorf("random %v suspiciously close to tim+ %v", spreads["random"], spreads["tim+"])
	}
}

func TestAllAlgorithmsQualityOrderingLT(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	g := GenerateChungLu(2000, 14000, 2.4, 2.1, 88)
	UseRandomLTWeights(g, 89)
	model := LT()
	const k = 10
	eval := func(seeds []uint32) float64 {
		return EstimateSpread(g, model, seeds, SpreadOptions{Samples: 20000, Seed: 7})
	}

	timPlus, err := Maximize(g, model, Options{K: k, Epsilon: 0.15, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	simpath, err := SimpathSelect(g, SimpathOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RandomSelect(g, k, 9)
	if err != nil {
		t.Fatal(err)
	}

	timSpread, simpathSpread, rndSpread := eval(timPlus.Seeds), eval(simpath.Seeds), eval(rnd)
	t.Logf("LT spreads: tim+=%v simpath=%v random=%v", timSpread, simpathSpread, rndSpread)
	if timSpread < 0.9*simpathSpread {
		t.Errorf("tim+ %v below 90%% of simpath %v", timSpread, simpathSpread)
	}
	if rndSpread > 0.5*timSpread {
		t.Errorf("random %v too close to tim+ %v", rndSpread, timSpread)
	}
}

func TestFullPipelineDeterminism(t *testing.T) {
	g := icInstance(t)
	opts := Options{K: 5, Epsilon: 0.3, Workers: 1, Seed: 99}
	a, err := Maximize(g, IC(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Maximize(g, IC(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("pipeline nondeterministic: %v vs %v", a.Seeds, b.Seeds)
		}
	}
	if a.Theta != b.Theta || a.KptPlus != b.KptPlus {
		t.Fatal("diagnostics nondeterministic")
	}
}
