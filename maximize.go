package repro

import (
	"context"

	"repro/internal/diffusion"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/spread"
	"repro/internal/tim"
)

// Rand is the fast seedable random generator handed to custom
// TriggerSampler implementations. Construct with NewRand.
type Rand = rng.Rand

// NewRand returns a deterministic random generator for the given seed.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// Model selects a diffusion model: IC(), LT(), or TriggeringModel(...).
type Model = diffusion.Model

// TriggerSampler defines a custom triggering distribution: for each node
// it samples a subset of the node's in-neighbors (the triggering set).
// See §4.2 of the paper; IC and LT are special cases.
type TriggerSampler = diffusion.TriggerSampler

// IC returns the independent cascade model. Edge weights are propagation
// probabilities.
func IC() Model { return diffusion.NewIC() }

// LT returns the linear threshold model. Edge weights are influence
// weights; each node's in-weights must sum to at most 1 (use
// UseRandomLTWeights or UseUniformLTWeights).
func LT() Model { return diffusion.NewLT() }

// TriggeringModel returns the general triggering model driven by a custom
// sampler.
func TriggeringModel(ts TriggerSampler) Model { return diffusion.NewTriggering(ts) }

// Algorithm selects the Maximize variant: TIMPlus (default) or TIM.
type Algorithm = tim.Algorithm

// Variants of Maximize.
const (
	// TIMPlus runs parameter estimation, the KPT refinement of §4.1,
	// and node selection — the paper's TIM+ (default, fastest).
	TIMPlus = tim.TIMPlus
	// TIM skips the refinement step — the paper's base algorithm.
	TIM = tim.TIM
)

// Options configures Maximize. Only K is required; see the field docs on
// tim.Options for the full contract (ε, ℓ, variant, workers, seed).
type Options = tim.Options

// Result carries the selected seeds plus the diagnostics the paper
// charts: KPT*, KPT+, θ, per-phase timings, and RR-set memory.
type Result = tim.Result

// Timings is the per-phase wall-clock breakdown (Figure 4).
type Timings = tim.Timings

// ErrBadOptions is returned by Maximize for invalid options.
var ErrBadOptions = tim.ErrBadOptions

// Maximize selects a size-K seed set maximizing expected spread under the
// given model. The result is (1 − 1/e − ε)-approximate with probability
// at least 1 − n^−ℓ, computed in O((k + ℓ)(m + n) log n / ε²) expected
// time (Theorems 1–3 of the paper).
func Maximize(g *Graph, model Model, opts Options) (*Result, error) {
	return tim.Maximize(g, model, opts)
}

// MaximizeContext is Maximize with cancellation: ctx is polled inside the
// sampling loops of all three phases, so a cancelled or deadline-exceeded
// context aborts the run promptly with ctx's error. Request-scoped
// callers (for example cmd/timserver) should prefer it over Maximize.
func MaximizeContext(ctx context.Context, g *Graph, model Model, opts Options) (*Result, error) {
	return tim.MaximizeContext(ctx, g, model, opts)
}

// RRCollection is a flat arena of reverse-reachable sets — the type a
// CollectionSource produces. See ExtendCollection in internal/diffusion
// for the prefix-deterministic way to grow one.
type RRCollection = diffusion.RRCollection

// CollectionSource is the RR-collection reuse hook of Options.Source: a
// long-lived caller can supply node-selection RR collections from a
// cache that is extended — never resampled — as θ grows across queries.
// Implementations return an *RRCollection with at least θ sets; see
// tim.CollectionSource for the exact contract and internal/server for
// the canonical implementation.
type CollectionSource = tim.CollectionSource

// ErrBadSource is returned by Maximize when a CollectionSource violates
// its contract (fewer than θ sets returned).
var ErrBadSource = tim.ErrBadSource

// SpreadOptions configures EstimateSpread.
type SpreadOptions = spread.Options

// EstimateSpread returns the Monte-Carlo estimate of E[I(seeds)], the
// expected number of nodes a cascade from seeds activates.
func EstimateSpread(g *Graph, model Model, seeds []uint32, opts SpreadOptions) float64 {
	return spread.Estimate(g, model, seeds, opts)
}

// EstimateSpreadStderr additionally returns the standard error of the
// estimate.
func EstimateSpreadStderr(g *Graph, model Model, seeds []uint32, opts SpreadOptions) (mean, stderr float64) {
	return spread.EstimateWithStderr(g, model, seeds, opts)
}

// QuerySpec constrains a Maximize run (set it as Options.Query): targeted
// audience weights, per-node seeding costs under a budget, forced or
// excluded seeds, and a MaxHops diffusion deadline. The zero spec is the
// unconstrained query. See internal/query for field semantics and
// DESIGN.md §9 for the estimator derivations.
type QuerySpec = query.Spec

// ErrBadQuerySpec is returned (wrapped in ErrBadOptions) for invalid
// constraint specs.
var ErrBadQuerySpec = query.ErrBadSpec

// EstimateSpreadConstrained is the Monte-Carlo ground truth for
// constrained queries: each cascade is cut off after maxHops rounds
// (0 = unlimited) and each activated node contributes weights[v] (nil =
// unit). With nil weights and maxHops 0 it measures what EstimateSpread
// does.
func EstimateSpreadConstrained(g *Graph, model Model, seeds []uint32, weights []float64, maxHops int, opts SpreadOptions) (mean, stderr float64) {
	return spread.EstimateConstrained(g, model, seeds, weights, maxHops, opts)
}
