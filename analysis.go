package repro

import (
	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Cascade analysis and graph diagnostics beyond seed selection.

// Activation is one recorded node activation in a traced cascade: which
// node activated, triggered by which in-neighbor, at which timestamp.
type Activation = diffusion.Activation

// CascadeTrace is the full record of one simulated cascade.
type CascadeTrace = diffusion.Trace

// TraceCascade simulates a single cascade from seeds and returns who
// activated whom and when — the timestamped process of §2.1 of the
// paper, made observable for visualization and debugging.
func TraceCascade(g *Graph, model Model, seeds []uint32, seed uint64) *CascadeTrace {
	sim := diffusion.NewSimulator(g, model)
	return sim.RunTrace(rng.New(seed), seeds)
}

// SCCResult describes the strongly connected components of a graph.
type SCCResult = graph.SCCResult

// SCC computes the strongly connected components of g (iterative
// Tarjan). Crawled social networks have a giant component; checking the
// largest SCC is the quickest sanity test that a synthetic graph has a
// realistic shape.
func SCC(g *Graph) *SCCResult { return graph.StronglyConnectedComponents(g) }

// CondenseSCC returns the condensation DAG of g: one node per strongly
// connected component, deduplicated cross-component edges.
func CondenseSCC(g *Graph, scc *SCCResult) *Graph { return graph.Condense(g, scc) }

// Ready-made triggering models (§4.2 generality; all preserve the
// Maximize guarantees).

// BoundedTriggerModel is IC with an attention cap: each in-neighbor
// triggers with its edge probability, but at most max of the successes
// (uniformly chosen) enter the triggering set.
func BoundedTriggerModel(max int) Model {
	return diffusion.NewTriggering(diffusion.BoundedTrigger{Max: max})
}

// ScaledICModel is IC with every edge probability multiplied by factor
// (clamped to [0, 1]) — for sensitivity analysis without rewriting
// weights.
func ScaledICModel(factor float64) Model {
	return diffusion.NewTriggering(diffusion.ScaledICTrigger{Factor: factor})
}

// TopWeightTriggerModel triggers deterministically on each node's top
// highest-weight in-neighbors ("trusted sources").
func TopWeightTriggerModel(top int) Model {
	return diffusion.NewTriggering(diffusion.TopWeightTrigger{Top: top})
}
