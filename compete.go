package repro

import (
	"repro/internal/compete"
)

// TieBreak selects how a node reached by several competing campaigns in
// the same timestep chooses its campaign.
type TieBreak = compete.TieBreak

// Tie-breaking rules for competitive cascades.
const (
	// TieRandom adopts one claiming campaign uniformly at random (the
	// rule of Bharathi et al.; default).
	TieRandom = compete.TieRandom
	// TiePriority adopts the claiming campaign with the lowest index.
	TiePriority = compete.TiePriority
)

// MaxParties is the largest supported number of simultaneous campaigns.
const MaxParties = compete.MaxParties

// CompeteOptions configures NewArena (world count, workers, seed, tie
// rule).
type CompeteOptions = compete.Options

// Arena is a set of pre-sampled live-edge worlds for competitive
// influence evaluation; see NewArena.
type Arena = compete.Arena

// FollowerOptions configures Arena.FollowerGreedy (budget K and an
// optional candidate restriction).
type FollowerOptions = compete.FollowerOptions

// FollowerResult reports the follower's selected campaign, its expected
// share, and selection diagnostics.
type FollowerResult = compete.FollowerResult

// ErrBadSeeds wraps competitive seed-set validation failures.
var ErrBadSeeds = compete.ErrBadSeeds

// NewArena prepares a competitive-influence arena: opts.Samples
// live-edge worlds of g under model (IC, LT, or any triggering model),
// against which Shares and FollowerGreedy evaluate campaigns — the §8
// future-work extension to competitive influence maximization.
//
// Example (the follower's problem of Bharathi et al.):
//
//	arena := repro.NewArena(g, repro.IC(), repro.CompeteOptions{Samples: 2000, Seed: 1})
//	res, err := arena.FollowerGreedy([][]uint32{incumbentSeeds}, repro.FollowerOptions{K: 10})
func NewArena(g *Graph, model Model, opts CompeteOptions) *Arena {
	return compete.NewArena(g, model, opts)
}
