package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// ReplayFile is the REPLAY.json schema, version 1 — deliberately a
// different shape from LOAD.json so the two artifacts can never be
// confused (timload -validate rejects a REPLAY.json).
type ReplayFile struct {
	Version      int    `json:"version"`
	GeneratedBy  string `json:"generated_by"`
	Source       string `json:"source"`
	RecordedSeed uint64 `json:"recorded_seed"`
	Records      int    `json:"records"`
	// SkippedConstrained counts recorded shapes that carry only a spec
	// profile hash; the concrete constraints are not in the log, so
	// those requests cannot be re-fired.
	SkippedConstrained int           `json:"skipped_constrained"`
	Classes            []ReplayClass `json:"classes"`
	Match              bool          `json:"match"`
	Mismatches         []string      `json:"mismatches,omitempty"`
}

// ReplayClass compares one tier class (budgeted / unbudgeted) between
// the recording and the replay.
type ReplayClass struct {
	Name          string           `json:"name"`
	Sent          int64            `json:"sent"`
	OK            int64            `json:"ok"`
	Shed          int64            `json:"shed"`
	Errors        int64            `json:"errors"`
	RecordedOK    int64            `json:"recorded_ok"`
	RecordedTiers map[string]int64 `json:"recorded_tiers"`
	ReplayedTiers map[string]int64 `json:"replayed_tiers"`
}

// replayShareTolerance bounds how far a class's per-tier share may
// drift between recording and replay before it counts as a mismatch.
// Tier choice is latency-EWMA driven, so the comparison is
// distribution-level: the θ/seed pipeline is deterministic given the
// header's seeds, but which rung a budgeted query settles on depends
// on observed wall-clock, which only reproduces approximately.
const replayShareTolerance = 0.25

// replayRun rebuilds the recorded serving environment from a qlog
// header (same dataset specs, build seeds, base seed, and ε ladder),
// re-fires the recorded workload open-loop on its original arrival
// offsets, and writes a per-class comparison to out. With strict set,
// a tier-breakdown drift beyond tolerance is an error.
func replayRun(path, out string, strict bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	header, records, err := obs.ReadQLog(f)
	f.Close()
	if errors.Is(err, obs.ErrTornTail) {
		// The recorder died mid-line (crash, kill -9). Every complete
		// record is still replayable — report the damage and carry on.
		fmt.Printf("timload: %s: %v — replaying the %d complete records\n", path, err, len(records))
	} else if err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("%s holds no query records", path)
	}
	if len(header.Datasets) == 0 {
		return fmt.Errorf("%s header names no datasets", path)
	}

	specs := make([]server.DatasetSpec, 0, len(header.Datasets))
	for _, d := range header.Datasets {
		specs = append(specs, server.DatasetSpec{Name: d.Name, Source: d.Source, Seed: d.Seed})
	}
	srv, err := server.New(server.Config{
		Datasets:       specs,
		CacheSize:      64,
		RequestTimeout: 30 * time.Second,
		Seed:           header.Seed,
		EpsLadder:      header.EpsLadder,
	})
	if err != nil {
		return fmt.Errorf("rebuild recorded server: %w", err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := &http.Client{Timeout: 60 * time.Second}

	// Re-fire open-loop: record i departs at its recorded offset
	// (rebased to the first record), regardless of earlier responses —
	// the same arrival process the recording server faced.
	type rres struct {
		status    int
		tier      string
		transport bool
		skipped   bool
	}
	results := make([]rres, len(records))
	skipped := 0
	var wg sync.WaitGroup
	off0 := records[0].OffsetMs
	start := time.Now()
	for i, rec := range records {
		if rec.Profile != "" {
			results[i].skipped = true
			skipped++
			continue
		}
		if sleepFor := start.Add(time.Duration((rec.OffsetMs - off0) * float64(time.Millisecond))).Sub(time.Now()); sleepFor > 0 {
			time.Sleep(sleepFor)
		}
		wg.Add(1)
		go func(i int, rec obs.QLogRecord) {
			defer wg.Done()
			body := map[string]any{"dataset": rec.Dataset, "k": rec.K}
			if rec.Model != "" {
				body["model"] = rec.Model
			}
			if rec.Epsilon > 0 {
				body["epsilon"] = rec.Epsilon
			}
			if rec.Ell > 0 {
				body["ell"] = rec.Ell
			}
			if rec.BudgetMs > 0 {
				body["budget_ms"] = rec.BudgetMs
			}
			if rec.MinConfidence > 0 {
				body["min_confidence"] = rec.MinConfidence
			}
			resp, err := fire(client, ts.URL, body)
			if err != nil {
				results[i] = rres{transport: true}
				return
			}
			results[i] = rres{status: resp.status, tier: resp.tier}
		}(i, rec)
	}
	wg.Wait()

	// Aggregate recording and replay per tier class.
	order := []string{"budgeted", "unbudgeted"}
	byName := map[string]*ReplayClass{}
	cls := func(name string) *ReplayClass {
		c := byName[name]
		if c == nil {
			c = &ReplayClass{Name: name, RecordedTiers: map[string]int64{}, ReplayedTiers: map[string]int64{}}
			byName[name] = c
		}
		return c
	}
	for i, rec := range records {
		name := "unbudgeted"
		if rec.BudgetMs > 0 {
			name = "budgeted"
		}
		c := cls(name)
		if rec.Status == http.StatusOK {
			c.RecordedOK++
			c.RecordedTiers[rec.Tier]++
		}
		r := results[i]
		if r.skipped {
			continue
		}
		c.Sent++
		switch {
		case r.transport:
			c.Errors++
		case r.status == http.StatusOK:
			c.OK++
			c.ReplayedTiers[r.tier]++
		case r.status == http.StatusServiceUnavailable:
			c.Shed++
		default:
			c.Errors++
		}
	}

	file := ReplayFile{
		Version:            1,
		GeneratedBy:        "timload-replay",
		Source:             path,
		RecordedSeed:       header.Seed,
		Records:            len(records),
		SkippedConstrained: skipped,
	}
	for _, name := range order {
		c := byName[name]
		if c == nil {
			continue
		}
		file.Classes = append(file.Classes, *c)
		file.Mismatches = append(file.Mismatches, classMismatches(c)...)
	}
	file.Match = len(file.Mismatches) == 0

	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}

	for _, c := range file.Classes {
		fmt.Printf("timload: replay %-10s sent=%d ok=%d shed=%d err=%d recorded=%v replayed=%v\n",
			c.Name, c.Sent, c.OK, c.Shed, c.Errors, c.RecordedTiers, c.ReplayedTiers)
	}
	fmt.Printf("timload: replayed %d records (%d constrained skipped) from %s → %s; match=%v\n",
		len(records), skipped, path, out, file.Match)
	if strict && !file.Match {
		return fmt.Errorf("replay drifted from recording: %s", strings.Join(file.Mismatches, "; "))
	}
	return nil
}

// classMismatches compares one class's replayed tier breakdown against
// the recording, distribution-level: per-tier OK shares must agree
// within replayShareTolerance.
func classMismatches(c *ReplayClass) []string {
	var out []string
	if c.RecordedOK > 0 && c.OK == 0 {
		return []string{fmt.Sprintf("class %s: recorded %d OK answers, replay produced none", c.Name, c.RecordedOK)}
	}
	tiers := map[string]bool{}
	for t := range c.RecordedTiers {
		tiers[t] = true
	}
	for t := range c.ReplayedTiers {
		tiers[t] = true
	}
	names := make([]string, 0, len(tiers))
	for t := range tiers {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, t := range names {
		var rs, ps float64
		if c.RecordedOK > 0 {
			rs = float64(c.RecordedTiers[t]) / float64(c.RecordedOK)
		}
		if c.OK > 0 {
			ps = float64(c.ReplayedTiers[t]) / float64(c.OK)
		}
		if math.Abs(rs-ps) > replayShareTolerance {
			out = append(out, fmt.Sprintf("class %s tier %q: recorded share %.2f, replayed %.2f (tolerance %.2f)",
				c.Name, t, rs, ps, replayShareTolerance))
		}
	}
	return out
}
