package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoadRoundTrip: a small in-process run writes a schema-valid
// LOAD.json whose counts reconcile. Structural assertions only — CI
// machines are too noisy for latency thresholds; the committed SLO
// numbers come from dedicated timload runs, not this test.
func TestLoadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a ~1s load phase against an in-process server")
	}
	out := filepath.Join(t.TempDir(), "LOAD.json")
	traceOut := filepath.Join(t.TempDir(), "TRACE.json")
	qlogOut := filepath.Join(t.TempDir(), "QLOG.jsonl")
	if err := run(40, time.Second, "0.5,0.3,0.2", 5, 250, 5, "ba:500:3", "", false, out, traceOut, qlogOut, 2); err != nil {
		t.Fatal(err)
	}
	if err := validateFile(out); err != nil {
		t.Fatalf("self-emitted file fails validation: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var f LoadFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Classes) != 3 {
		t.Fatalf("classes: %+v", f.Classes)
	}
	if f.Totals.Sent != 40 {
		t.Fatalf("sent %d, want the 40 scheduled arrivals", f.Totals.Sent)
	}
	// The deterministic schedule honors the mix to within rounding.
	for i, want := range []int64{20, 12, 8} {
		if got := f.Classes[i].Sent; got < want-1 || got > want+1 {
			t.Fatalf("class %s sent %d, want ~%d", f.Classes[i].Name, got, want)
		}
	}
	// Unbudgeted traffic must carry a guarantee: every OK answer is RIS.
	un := f.Classes[2]
	if un.Tiers["fast"] != 0 {
		t.Fatalf("unbudgeted class answered by the fast tier: %+v", un.Tiers)
	}
	// The run sampled requests with trace ids, scraped a healthy
	// /metrics mid-flight, and dumped the slow traces.
	if len(f.Samples) == 0 {
		t.Fatal("no request samples recorded")
	}
	if !f.Metrics.ScrapedMidRun || f.Metrics.HistogramSeries == 0 {
		t.Fatalf("mid-run metrics scrape missing or empty: %+v", f.Metrics)
	}
	traces, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatalf("TRACE.json not written: %v", err)
	}
	var dump struct {
		Traces []struct {
			ID    string `json:"id"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(traces, &dump); err != nil {
		t.Fatalf("TRACE.json not parseable: %v", err)
	}
	if len(dump.Traces) == 0 || len(dump.Traces[0].Spans) == 0 {
		t.Fatalf("TRACE.json carries no span chains: %s", traces)
	}

	// The run also recorded a query flight log; a strict replay against
	// an identically-seeded server must reproduce the per-class tier
	// breakdown (distribution-level) and write a REPLAY.json. Under the
	// race detector the ~10× slowdown changes which budgeted queries
	// shed, so tier shares don't reproduce — replay non-strict there
	// and check structure only.
	replayOut := filepath.Join(t.TempDir(), "REPLAY.json")
	if err := replayRun(qlogOut, replayOut, !raceEnabled); err != nil {
		t.Fatalf("strict replay of self-recorded qlog: %v", err)
	}
	rdata, err := os.ReadFile(replayOut)
	if err != nil {
		t.Fatal(err)
	}
	var rf ReplayFile
	if err := json.Unmarshal(rdata, &rf); err != nil {
		t.Fatal(err)
	}
	if rf.Version != 1 || rf.GeneratedBy != "timload-replay" {
		t.Fatalf("replay summary: %+v", rf)
	}
	if !raceEnabled && !rf.Match {
		t.Fatalf("replay drifted: %+v", rf)
	}
	if rf.Records < 40 {
		t.Fatalf("replay saw %d records, want the full recording", rf.Records)
	}
	// REPLAY.json must never pass as a LOAD.json.
	if err := validateFile(replayOut); err == nil {
		t.Fatal("REPLAY.json validated as a LOAD.json")
	}
}

// TestBuildSchedule: the class interleave is deterministic, covers every
// request, and tracks the shares.
func TestBuildSchedule(t *testing.T) {
	classes := []classSpec{{share: 0.5}, {share: 0.25}, {share: 0.25}}
	s := buildSchedule(classes, 100)
	counts := map[int]int{}
	for _, c := range s {
		counts[c]++
	}
	if counts[0] != 50 || counts[1] != 25 || counts[2] != 25 {
		t.Fatalf("counts = %v", counts)
	}
	// Even interleave: no class goes dark for long stretches.
	for i := 4; i < len(s); i++ {
		window := map[int]bool{}
		for _, c := range s[i-4 : i+1] {
			window[c] = true
		}
		if !window[0] {
			t.Fatalf("majority class absent from window ending at %d: %v", i, s[i-4:i+1])
		}
	}
	// A zero-share class never appears.
	s = buildSchedule([]classSpec{{share: 1}, {share: 0}}, 10)
	for _, c := range s {
		if c != 0 {
			t.Fatalf("zero-share class scheduled: %v", s)
		}
	}
}

func TestParseMix(t *testing.T) {
	shares, err := parseMix("2,1,1")
	if err != nil {
		t.Fatal(err)
	}
	if shares != [3]float64{0.5, 0.25, 0.25} {
		t.Fatalf("shares = %v", shares)
	}
	for _, bad := range []string{"1,1", "a,b,c", "-1,1,1", "0,0,0", ""} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("parseMix(%q) accepted", bad)
		}
	}
}

// TestValidateRejects: structurally broken files fail with pointed
// errors.
func TestValidateRejects(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"bad version":   `{"version":1,"generated_by":"timload","config":{"target_qps":1,"duration_ms":1,"mix":"1,0,0","tight_budget_ms":5,"loose_budget_ms":250,"k":1,"dataset":"d","quick":false,"cores":1},"classes":[],"totals":{}}`,
		"no classes":    `{"version":3,"generated_by":"timload","config":{"target_qps":1,"duration_ms":1,"mix":"1,0,0","tight_budget_ms":5,"loose_budget_ms":250,"k":1,"dataset":"d","quick":false,"cores":1},"classes":[],"totals":{}}`,
		"counts broken": `{"version":3,"generated_by":"timload","config":{"target_qps":1,"duration_ms":1,"mix":"1,0,0","tight_budget_ms":5,"loose_budget_ms":250,"k":1,"dataset":"d","quick":false,"cores":1},"classes":[{"name":"tight","budget_ms":5,"sent":3,"ok":1,"shed":1,"errors":0,"retries":0,"tiers":{"fast":1},"p50_ms":1,"p99_ms":2,"max_ms":3,"server_p50_ms":1,"server_p99_ms":1,"budget_violations":0}],"totals":{"sent":3,"ok":1,"shed":1,"errors":0,"retries":0,"achieved_qps":1}}`,
		"unknown tier":  `{"version":3,"generated_by":"timload","config":{"target_qps":1,"duration_ms":1,"mix":"1,0,0","tight_budget_ms":5,"loose_budget_ms":250,"k":1,"dataset":"d","quick":false,"cores":1},"classes":[{"name":"tight","budget_ms":5,"sent":1,"ok":1,"shed":0,"errors":0,"retries":0,"tiers":{"psychic":1},"p50_ms":1,"p99_ms":2,"max_ms":3,"server_p50_ms":1,"server_p99_ms":1,"budget_violations":0}],"totals":{"sent":1,"ok":1,"shed":0,"errors":0,"retries":0,"achieved_qps":1}}`,
		"retry totals":  `{"version":3,"generated_by":"timload","config":{"target_qps":1,"duration_ms":1,"mix":"1,0,0","tight_budget_ms":5,"loose_budget_ms":250,"k":1,"dataset":"d","quick":false,"cores":1},"classes":[{"name":"tight","budget_ms":5,"sent":1,"ok":1,"shed":0,"errors":0,"retries":2,"tiers":{"fast":1},"p50_ms":1,"p99_ms":2,"max_ms":3,"server_p50_ms":1,"server_p99_ms":1,"budget_violations":0}],"totals":{"sent":1,"ok":1,"shed":0,"errors":0,"retries":0,"achieved_qps":1}}`,
		"unknown field": `{"version":3,"generated_by":"timload","bogus":1}`,
		"not json":      `hello`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, strings.ReplaceAll(name, " ", "_")+".json")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := validateFile(path); err == nil {
			t.Fatalf("%s: validation passed, want failure", name)
		}
	}
	if err := validateFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file: validation passed")
	}
}

// TestRetryDelay: the backoff honors the server's Retry-After when one
// was sent, falls back to doubling otherwise, jitters within [0.5, 1.5)×,
// and never exceeds the cap (times 1.5 jitter).
func TestRetryDelay(t *testing.T) {
	for i := 0; i < 200; i++ {
		if d := retryDelay(1, 0); d < 500*time.Millisecond || d >= 1500*time.Millisecond {
			t.Fatalf("Retry-After=1s delay %v outside [0.5s, 1.5s)", d)
		}
		if d := retryDelay(0, 0); d < 50*time.Millisecond || d >= 150*time.Millisecond {
			t.Fatalf("fallback attempt-0 delay %v outside [50ms, 150ms)", d)
		}
		if d := retryDelay(0, 2); d < 200*time.Millisecond || d >= 600*time.Millisecond {
			t.Fatalf("fallback attempt-2 delay %v outside [200ms, 600ms)", d)
		}
		if d := retryDelay(60, 1); d >= 4500*time.Millisecond {
			t.Fatalf("capped delay %v above 3s×1.5", d)
		}
	}
}

// TestFireRetry: a stub that sheds N times before answering. Bounded
// attempts, final status wins, and the retry count reports the extra
// attempts actually fired.
func TestFireRetry(t *testing.T) {
	var calls atomic.Int32
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			// Retry-After: 0 keeps the test on the fast fallback backoff.
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"tier":"ris","trace_id":"t-1","elapsed_ms":1}`)
	}))
	defer stub.Close()
	client := &http.Client{Timeout: 10 * time.Second}

	resp, tries, err := fireRetry(client, stub.URL, map[string]any{"dataset": "d", "k": 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); resp.status != http.StatusOK || tries != 2 || got != 3 {
		t.Fatalf("status=%d tries=%d calls=%d, want a 200 after 2 retries", resp.status, tries, got)
	}

	// Exhausted attempts: the shed stands, every retry is counted.
	calls.Store(-100) // stub sheds for the whole run
	resp, tries, err = fireRetry(client, stub.URL, map[string]any{"dataset": "d", "k": 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != http.StatusServiceUnavailable || tries != 2 {
		t.Fatalf("status=%d tries=%d, want the shed to stand after 2 retries", resp.status, tries)
	}

	// Zero budget: first shed is final, nothing retried.
	resp, tries, err = fireRetry(client, stub.URL, map[string]any{"dataset": "d", "k": 1}, 0)
	if err != nil || resp.status != http.StatusServiceUnavailable || tries != 0 {
		t.Fatalf("status=%d tries=%d err=%v, want an unretried shed", resp.status, tries, err)
	}
}
