// Command timload is an open-loop load generator for the tiered query
// server: it fires /v1/maximize requests at a fixed arrival rate
// (arrivals are scheduled by the clock, never gated on responses — a
// slow server faces a growing backlog exactly as it would in
// production), mixes tight-budget, loose-budget, and unbudgeted traffic,
// and writes the observed per-class latency distribution, tier
// breakdown, and SLO violations as machine-readable LOAD.json. Shed
// (503) responses are retried up to -shed-retries times, honoring the
// server's Retry-After hint with jittered backoff; retry counts land in
// LOAD.json per class.
//
// By default it spins up an in-process server over a synthetic dataset,
// so a single command is a self-contained soak; point -url at a running
// timserver to load-test over the wire instead.
//
// Example:
//
//	timload -qps 200 -duration 30s -mix 0.6,0.3,0.1 -out LOAD.json
//	timload -quick                    # CI smoke: 100 QPS for ~3s
//	timload -quick -qlog QLOG.jsonl   # also record the query flight log
//	timload -replay QLOG.jsonl -replay-strict
//	timload -validate LOAD.json
//
// With -qlog the in-process server records every answered query shape
// to a JSONL flight log (see DESIGN.md §13); -replay rebuilds an
// identically-seeded server from a log's header, re-fires the recorded
// workload open-loop, and compares the per-class tier breakdown
// against the recorded outcomes, writing REPLAY.json (-replay-out).
//
// Besides LOAD.json, a run scrapes /metrics mid-flight (failing if the
// exposition is unparseable or its histograms carry no samples), samples
// trace ids and server-side latencies into the samples section, and dumps
// the server's slowest retained traces to TRACE.json (-trace-out).
//
// Intensity is env-tunable for CI matrices without workflow edits:
// TIMLOAD_QPS and TIMLOAD_DURATION override the flag defaults.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// LoadFile is the LOAD.json schema, version 3. Latencies are
// client-observed milliseconds. Version 2 added the per-request samples
// section (trace ids + server-side latencies) and the mid-run /metrics
// scrape summary; version 3 adds per-class retry accounting for
// 503-shed requests (see -shed-retries).
type LoadFile struct {
	Version     int        `json:"version"`
	GeneratedBy string     `json:"generated_by"`
	Config      LoadConfig `json:"config"`
	// Classes holds one entry per request class in the mix; a class with
	// a zero share is omitted.
	Classes []ClassResult `json:"classes"`
	Totals  LoadTotals    `json:"totals"`
	// Samples holds every sampleEvery-th request's trace id and latencies,
	// so a LOAD.json can be joined against the server's trace ring.
	Samples []RequestSample `json:"samples,omitempty"`
	// Metrics summarizes the mid-run /metrics scrape.
	Metrics MetricsCheck `json:"metrics"`
}

// RequestSample is one sampled request: enough to look its trace up via
// GET /v1/trace/{id} while the ring still holds it.
type RequestSample struct {
	Class    string  `json:"class"`
	TraceID  string  `json:"trace_id"`
	Status   int     `json:"status"`
	ClientMs float64 `json:"client_ms"`
	ServerMs float64 `json:"server_ms"`
}

// MetricsCheck is the outcome of the mid-run /metrics scrape: the run
// fails outright on an unparseable exposition, lint violations, or
// histograms with no samples, so these numbers in a written LOAD.json
// always describe a healthy scrape.
type MetricsCheck struct {
	ScrapedMidRun bool `json:"scraped_mid_run"`
	Families      int  `json:"families"`
	Samples       int  `json:"samples"`
	// HistogramSeries counts histogram series with a positive _count.
	HistogramSeries int      `json:"histogram_series"`
	LintErrors      []string `json:"lint_errors,omitempty"`
}

// LoadConfig echoes the run parameters for reproducibility.
type LoadConfig struct {
	TargetQPS  float64 `json:"target_qps"`
	DurationMs float64 `json:"duration_ms"`
	Mix        string  `json:"mix"`
	TightMs    float64 `json:"tight_budget_ms"`
	LooseMs    float64 `json:"loose_budget_ms"`
	K          int     `json:"k"`
	Dataset    string  `json:"dataset"`
	URL        string  `json:"url,omitempty"`
	Quick      bool    `json:"quick"`
	Cores      int     `json:"cores"`
}

// ClassResult is the observed outcome of one request class.
type ClassResult struct {
	Name     string  `json:"name"`
	BudgetMs float64 `json:"budget_ms"` // 0 = unbudgeted
	Sent     int64   `json:"sent"`
	OK       int64   `json:"ok"`
	Shed     int64   `json:"shed"`   // requests still 503 after retries
	Errors   int64   `json:"errors"` // transport failures and non-200/503 statuses
	// Retries counts extra attempts fired after 503 sheds (each request
	// retries at most -shed-retries times, honoring Retry-After with
	// jittered backoff). A request that eventually succeeds counts OK;
	// one that exhausts its attempts counts Shed.
	Retries int64 `json:"retries"`
	// Tiers counts OK answers by the tier the server reported.
	Tiers map[string]int64 `json:"tiers"`
	// Client-observed latency over OK answers.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	// Server-reported elapsed_ms over OK answers — the SLO's own clock,
	// free of client-side queueing under open-loop overload.
	ServerP50Ms float64 `json:"server_p50_ms"`
	ServerP99Ms float64 `json:"server_p99_ms"`
	// BudgetViolations counts OK answers whose server-side elapsed_ms
	// exceeded the class budget plus violationGraceMs.
	BudgetViolations int64 `json:"budget_violations"`
}

// LoadTotals aggregates across classes.
type LoadTotals struct {
	Sent    int64 `json:"sent"`
	OK      int64 `json:"ok"`
	Shed    int64 `json:"shed"`
	Errors  int64 `json:"errors"`
	Retries int64 `json:"retries"`
	// AchievedQPS is sent / wall time — open-loop dispatch keeps this at
	// the target unless the generator itself cannot keep up.
	AchievedQPS float64 `json:"achieved_qps"`
}

// violationGraceMs absorbs scheduler jitter between the server's
// deadline check and its response timestamp; a genuine tier
// misclassification overshoots by far more.
const violationGraceMs = 25

// classSpec defines one slice of the traffic mix.
type classSpec struct {
	name     string
	budgetMs float64
	share    float64
}

// outcome is one completed request, recorded by the per-request
// goroutine and aggregated after the run.
type outcome struct {
	class     int
	status    int
	tier      string
	traceID   string
	clientMs  float64
	elapsedMs float64 // server-reported
	transport bool    // transport-level failure (status meaningless)
	retries   int     // extra attempts after 503 sheds
}

// sampleEvery is the request-sampling stride of the samples section: one
// request in sampleEvery lands in LOAD.json with its trace id.
const sampleEvery = 25

func main() {
	var (
		qps      = flag.Float64("qps", envFloat("TIMLOAD_QPS", 100), "target arrival rate, requests/second (env TIMLOAD_QPS)")
		duration = flag.Duration("duration", envDuration("TIMLOAD_DURATION", 10*time.Second), "load phase length (env TIMLOAD_DURATION)")
		mix      = flag.String("mix", "0.6,0.3,0.1", "traffic shares tight,loose,unbudgeted (normalized)")
		tightMs  = flag.Float64("tight-ms", 5, "budget_ms of the tight class")
		looseMs  = flag.Float64("loose-ms", 250, "budget_ms of the loose class")
		k        = flag.Int("k", 10, "seed-set size per query")
		dataset  = flag.String("dataset", "ba:2000:4", "dataset source for the in-process server (ignored with -url)")
		url      = flag.String("url", "", "load an external server at this base URL instead of an in-process one")
		quick    = flag.Bool("quick", false, "CI smoke: 100 QPS for 3s on a small graph")
		out      = flag.String("out", "LOAD.json", "output path")
		traceOut = flag.String("trace-out", "TRACE.json", "path for the server's slowest retained traces (empty = skip)")
		validate = flag.String("validate", "", "validate an existing LOAD.json against the schema and exit")
		qlogOut  = flag.String("qlog", "", "record the in-process server's query flight log to this JSONL path (incompatible with -url; pass -qlog to timserver instead)")
		replayIn = flag.String("replay", "", "replay a recorded QLOG.jsonl against an identically-seeded in-process server and exit")
		replayOt = flag.String("replay-out", "REPLAY.json", "replay summary output path")
		replaySt = flag.Bool("replay-strict", false, "exit nonzero when the replayed per-class tier breakdown drifts from the recording")
		retries  = flag.Int("shed-retries", 2, "max retries per 503-shed request, honoring Retry-After with jittered backoff (0 = give up on first shed)")
	)
	flag.Parse()
	if *validate != "" {
		if err := validateFile(*validate); err != nil {
			fmt.Fprintln(os.Stderr, "timload: invalid:", err)
			os.Exit(1)
		}
		fmt.Printf("timload: %s is schema-valid\n", *validate)
		return
	}
	if *replayIn != "" {
		if err := replayRun(*replayIn, *replayOt, *replaySt); err != nil {
			fmt.Fprintln(os.Stderr, "timload:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*qps, *duration, *mix, *tightMs, *looseMs, *k, *dataset, *url, *quick, *out, *traceOut, *qlogOut, *retries); err != nil {
		fmt.Fprintln(os.Stderr, "timload:", err)
		os.Exit(1)
	}
}

func envFloat(key string, def float64) float64 {
	if s := os.Getenv(key); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func envDuration(key string, def time.Duration) time.Duration {
	if s := os.Getenv(key); s != "" {
		if v, err := time.ParseDuration(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func run(qps float64, duration time.Duration, mixStr string, tightMs, looseMs float64,
	k int, dataset, url string, quick bool, out, traceOut, qlog string, shedRetries int) error {

	if quick {
		qps, duration, dataset = 100, 3*time.Second, "ba:1000:3"
	}
	if qps <= 0 || duration <= 0 {
		return fmt.Errorf("qps and duration must be positive")
	}
	shares, err := parseMix(mixStr)
	if err != nil {
		return err
	}
	classes := []classSpec{
		{name: "tight", budgetMs: tightMs, share: shares[0]},
		{name: "loose", budgetMs: looseMs, share: shares[1]},
		{name: "unbudgeted", budgetMs: 0, share: shares[2]},
	}

	base := url
	var srv *server.Server
	if base == "" {
		srv, err = server.New(server.Config{
			Datasets:       []server.DatasetSpec{{Name: "load", Source: dataset, Seed: 7}},
			CacheSize:      64,
			RequestTimeout: 30 * time.Second,
			Seed:           1,
			QLogPath:       qlog,
		})
		if err != nil {
			return err
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		base = ts.URL
		dataset = "load"
	} else {
		if qlog != "" {
			return fmt.Errorf("-qlog records the in-process server; pass -qlog to the timserver behind -url instead")
		}
		// Against an external server the caller names the dataset directly.
		if flag.Lookup("dataset") != nil && dataset == "ba:2000:4" {
			return fmt.Errorf("-url requires -dataset to name a dataset served there")
		}
	}

	client := &http.Client{Timeout: 60 * time.Second}

	// Warm-up: one unbudgeted query per model calibrates the planner's
	// cost model and fills the result cache, and one tight query builds
	// the fast-tier scorer. Warm-up outcomes are not recorded — the run
	// measures steady state, which is what the SLO speaks about.
	for _, warm := range []map[string]any{
		{"dataset": dataset, "k": k},
		{"dataset": dataset, "k": k, "budget_ms": tightMs},
	} {
		if _, err := fire(client, base, warm); err != nil {
			return fmt.Errorf("warm-up: %w", err)
		}
	}

	// Open-loop dispatch: request i departs at start + i/qps, regardless
	// of whether earlier requests have returned. Class assignment cycles
	// a deterministic schedule matching the mix, so every run of the same
	// config sends the identical sequence.
	total := int(math.Round(qps * duration.Seconds()))
	if total < 1 {
		total = 1
	}
	schedule := buildSchedule(classes, total)
	interval := time.Duration(float64(time.Second) / qps)

	// Mid-run /metrics scrape: half-way through the load phase the
	// exposition must parse strictly, lint clean, and show live histogram
	// samples — scraping under load is the point, an idle scrape would
	// pass vacuously.
	var (
		metrics    MetricsCheck
		metricsErr error
		metricsWg  sync.WaitGroup
	)
	metricsWg.Add(1)
	go func() {
		defer metricsWg.Done()
		time.Sleep(duration / 2)
		metrics, metricsErr = scrapeMetrics(client, base)
	}()

	outcomes := make([]outcome, total)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < total; i++ {
		if sleepFor := start.Add(time.Duration(i) * interval).Sub(time.Now()); sleepFor > 0 {
			time.Sleep(sleepFor)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ci := schedule[i]
			body := map[string]any{"dataset": dataset, "k": k}
			if b := classes[ci].budgetMs; b > 0 {
				body["budget_ms"] = b
			}
			t0 := time.Now()
			resp, tries, err := fireRetry(client, base, body, shedRetries)
			outcomes[i] = outcome{class: ci, retries: tries, clientMs: float64(time.Since(t0).Microseconds()) / 1000}
			if err != nil {
				outcomes[i].transport = true
				return
			}
			outcomes[i].status = resp.status
			outcomes[i].tier = resp.tier
			outcomes[i].traceID = resp.traceID
			outcomes[i].elapsedMs = resp.elapsedMs
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	metricsWg.Wait()
	if metricsErr != nil {
		return fmt.Errorf("mid-run metrics scrape: %w", metricsErr)
	}

	file := assemble(classes, outcomes, LoadConfig{
		TargetQPS: qps, DurationMs: float64(duration.Milliseconds()),
		Mix: mixStr, TightMs: tightMs, LooseMs: looseMs,
		K: k, Dataset: dataset, URL: url, Quick: quick,
		Cores: runtime.GOMAXPROCS(0),
	}, wall)
	file.Metrics = metrics

	if traceOut != "" {
		if err := dumpTraces(client, base, traceOut); err != nil {
			// Traces are best-effort: an external server may run with
			// tracing disabled, and that should not fail the load run.
			fmt.Fprintf(os.Stderr, "timload: trace dump skipped: %v\n", err)
		}
	}
	if srv != nil {
		// Flush the flight recorder after the last response, so the file
		// holds every recorded request before anyone replays it.
		if err := srv.Close(); err != nil {
			return fmt.Errorf("qlog close: %w", err)
		}
		if qlog != "" {
			fmt.Printf("timload: query flight log → %s\n", qlog)
		}
	}

	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}

	for _, c := range file.Classes {
		fmt.Printf("timload: %-10s sent=%d ok=%d shed=%d err=%d retries=%d p50=%.2fms p99=%.2fms srv_p99=%.2fms viol=%d tiers=%v\n",
			c.Name, c.Sent, c.OK, c.Shed, c.Errors, c.Retries, c.P50Ms, c.P99Ms, c.ServerP99Ms, c.BudgetViolations, c.Tiers)
	}
	fmt.Printf("timload: %.0f QPS target, %.0f achieved over %v → %s\n",
		qps, file.Totals.AchievedQPS, wall.Round(time.Millisecond), out)
	if file.Totals.Errors > 0 {
		return fmt.Errorf("%d requests failed (see %s)", file.Totals.Errors, out)
	}
	return nil
}

// fired is the slice of a response the generator cares about.
type fired struct {
	status    int
	tier      string
	traceID   string
	elapsedMs float64
	// retryAfterSec is the server's Retry-After hint on 503 sheds
	// (0 when absent or unparseable).
	retryAfterSec int
}

// fireRetry fires one request, retrying 503 sheds up to maxRetries
// times. Each retry waits the server's Retry-After hint (or an
// exponential fallback) with jitter, so a shedding server sees retries
// spread out rather than a synchronized second wave. The returned count
// is the number of extra attempts actually fired; transport errors are
// not retried — a shed is the server's explicit "come back later",
// a dead connection is not.
func fireRetry(client *http.Client, base string, body map[string]any, maxRetries int) (fired, int, error) {
	tries := 0
	for {
		resp, err := fire(client, base, body)
		if err != nil || resp.status != http.StatusServiceUnavailable || tries >= maxRetries {
			return resp, tries, err
		}
		time.Sleep(retryDelay(resp.retryAfterSec, tries))
		tries++
	}
}

// retryDelay is the wait before retry attempt (0-based): the server's
// Retry-After when it sent one, else 100ms doubling per attempt, either
// way jittered uniformly over [0.5, 1.5)× and capped at 3s.
func retryDelay(retryAfterSec, attempt int) time.Duration {
	base := time.Duration(retryAfterSec) * time.Second
	if base <= 0 {
		base = 100 * time.Millisecond << attempt
	}
	if base > 3*time.Second {
		base = 3 * time.Second
	}
	return time.Duration(float64(base) * (0.5 + rand.Float64()))
}

func fire(client *http.Client, base string, body map[string]any) (fired, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return fired{}, err
	}
	resp, err := client.Post(base+"/v1/maximize", "application/json", bytes.NewReader(buf))
	if err != nil {
		return fired{}, err
	}
	defer resp.Body.Close()
	var parsed struct {
		Tier      string  `json:"tier"`
		TraceID   string  `json:"trace_id"`
		ElapsedMs float64 `json:"elapsed_ms"`
	}
	// Shed and error bodies simply leave the fields zero.
	_ = json.NewDecoder(resp.Body).Decode(&parsed)
	id := parsed.TraceID
	if id == "" {
		// Shed/error bodies carry no trace_id, but the middleware still
		// echoes the request id on the response header.
		id = resp.Header.Get("X-Request-ID")
	}
	f := fired{status: resp.StatusCode, tier: parsed.Tier, traceID: id, elapsedMs: parsed.ElapsedMs}
	if resp.StatusCode == http.StatusServiceUnavailable {
		f.retryAfterSec, _ = strconv.Atoi(resp.Header.Get("Retry-After"))
	}
	return f, nil
}

// scrapeMetrics pulls /metrics and checks it the way CI does: strict
// parse, lint, and at least one histogram series with samples.
func scrapeMetrics(client *http.Client, base string) (MetricsCheck, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return MetricsCheck{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return MetricsCheck{}, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return MetricsCheck{}, err
	}
	fams, err := obs.ParseExposition(string(data))
	if err != nil {
		return MetricsCheck{}, fmt.Errorf("/metrics unparseable: %w", err)
	}
	mc := MetricsCheck{ScrapedMidRun: true, Families: len(fams)}
	for _, f := range fams {
		mc.Samples += len(f.Samples)
		if f.Type == "histogram" {
			for _, s := range f.Samples {
				if strings.HasSuffix(s.Name, "_count") && s.Value > 0 {
					mc.HistogramSeries++
				}
			}
		}
	}
	for _, e := range obs.Lint(fams) {
		mc.LintErrors = append(mc.LintErrors, e.Error())
	}
	if len(mc.LintErrors) > 0 {
		return mc, fmt.Errorf("/metrics lint: %s (and %d more)", mc.LintErrors[0], len(mc.LintErrors)-1)
	}
	if mc.HistogramSeries == 0 {
		return mc, fmt.Errorf("/metrics: no histogram series carries samples mid-run")
	}
	return mc, nil
}

// dumpTraces writes the server's slowest retained traces verbatim to
// path, so a load run leaves an inspectable span-chain artifact next to
// LOAD.json.
func dumpTraces(client *http.Client, base, path string) error {
	resp, err := client.Get(base + "/v1/trace/slow?n=10")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/v1/trace/slow: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if len(data) > 0 && data[len(data)-1] != '\n' {
		data = append(data, '\n')
	}
	return os.WriteFile(path, data, 0o644)
}

func parseMix(s string) ([3]float64, error) {
	var shares [3]float64
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return shares, fmt.Errorf("-mix wants three comma-separated shares (tight,loose,unbudgeted), got %q", s)
	}
	var sum float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return shares, fmt.Errorf("bad -mix share %q", p)
		}
		shares[i] = v
		sum += v
	}
	if sum == 0 {
		return shares, fmt.Errorf("-mix shares are all zero")
	}
	for i := range shares {
		shares[i] /= sum
	}
	return shares, nil
}

// buildSchedule spreads the classes over the request sequence in
// proportion to their shares, deterministically: request i goes to the
// class whose cumulative quota is furthest behind. This interleaves the
// classes evenly instead of sending them in blocks.
func buildSchedule(classes []classSpec, total int) []int {
	schedule := make([]int, total)
	sent := make([]float64, len(classes))
	for i := 0; i < total; i++ {
		best, bestLag := 0, math.Inf(-1)
		for c := range classes {
			if classes[c].share == 0 {
				continue
			}
			lag := classes[c].share*float64(i+1) - sent[c]
			if lag > bestLag {
				best, bestLag = c, lag
			}
		}
		schedule[i] = best
		sent[best]++
	}
	return schedule
}

func assemble(classes []classSpec, outcomes []outcome, cfg LoadConfig, wall time.Duration) LoadFile {
	file := LoadFile{Version: 3, GeneratedBy: "timload", Config: cfg}
	for i, o := range outcomes {
		if i%sampleEvery != 0 || o.transport {
			continue
		}
		file.Samples = append(file.Samples, RequestSample{
			Class:    classes[o.class].name,
			TraceID:  o.traceID,
			Status:   o.status,
			ClientMs: o.clientMs,
			ServerMs: o.elapsedMs,
		})
	}
	for ci, spec := range classes {
		if spec.share == 0 {
			continue
		}
		cr := ClassResult{Name: spec.name, BudgetMs: spec.budgetMs, Tiers: map[string]int64{}}
		var lat, srvLat []float64
		for _, o := range outcomes {
			if o.class != ci {
				continue
			}
			cr.Sent++
			cr.Retries += int64(o.retries)
			switch {
			case o.transport:
				cr.Errors++
			case o.status == http.StatusOK:
				cr.OK++
				cr.Tiers[o.tier]++
				lat = append(lat, o.clientMs)
				srvLat = append(srvLat, o.elapsedMs)
				if spec.budgetMs > 0 && o.elapsedMs > spec.budgetMs+violationGraceMs {
					cr.BudgetViolations++
				}
			case o.status == http.StatusServiceUnavailable:
				cr.Shed++
			default:
				cr.Errors++
			}
		}
		cr.P50Ms, cr.P99Ms, cr.MaxMs = percentiles(lat)
		cr.ServerP50Ms, cr.ServerP99Ms, _ = percentiles(srvLat)
		file.Classes = append(file.Classes, cr)
		file.Totals.Sent += cr.Sent
		file.Totals.OK += cr.OK
		file.Totals.Shed += cr.Shed
		file.Totals.Errors += cr.Errors
		file.Totals.Retries += cr.Retries
	}
	if secs := wall.Seconds(); secs > 0 {
		file.Totals.AchievedQPS = float64(file.Totals.Sent) / secs
	}
	return file
}

// percentiles returns nearest-rank p50/p99 and the max of ms samples.
func percentiles(ms []float64) (p50, p99, max float64) {
	if len(ms) == 0 {
		return 0, 0, 0
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	rank := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	return rank(0.50), rank(0.99), sorted[len(sorted)-1]
}

// validateFile checks a LOAD.json for schema version 3: required fields
// present, counts consistent, percentiles ordered, samples joinable, and
// the mid-run metrics scrape healthy.
func validateFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f LoadFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return err
	}
	return validate(&f)
}

func validate(f *LoadFile) error {
	if f.Version != 3 {
		return fmt.Errorf("schema version %d, want 3", f.Version)
	}
	if f.GeneratedBy != "timload" {
		return fmt.Errorf("generated_by %q", f.GeneratedBy)
	}
	if f.Config.TargetQPS <= 0 || f.Config.DurationMs <= 0 {
		return fmt.Errorf("non-positive config qps/duration")
	}
	if len(f.Classes) == 0 {
		return fmt.Errorf("no classes")
	}
	var sent, ok, shed, errs, retries int64
	for _, c := range f.Classes {
		if c.Name == "" {
			return fmt.Errorf("class with empty name")
		}
		if c.Retries < 0 {
			return fmt.Errorf("class %s: negative retries %d", c.Name, c.Retries)
		}
		if c.Sent != c.OK+c.Shed+c.Errors {
			return fmt.Errorf("class %s: sent %d != ok %d + shed %d + errors %d", c.Name, c.Sent, c.OK, c.Shed, c.Errors)
		}
		if c.P50Ms > c.P99Ms || c.P99Ms > c.MaxMs {
			return fmt.Errorf("class %s: percentiles out of order (%g, %g, %g)", c.Name, c.P50Ms, c.P99Ms, c.MaxMs)
		}
		if c.ServerP50Ms > c.ServerP99Ms {
			return fmt.Errorf("class %s: server percentiles out of order (%g, %g)", c.Name, c.ServerP50Ms, c.ServerP99Ms)
		}
		var tiered int64
		for tier, n := range c.Tiers {
			if tier != "ris" && tier != "fast" {
				return fmt.Errorf("class %s: unknown tier %q", c.Name, tier)
			}
			tiered += n
		}
		if tiered != c.OK {
			return fmt.Errorf("class %s: tier counts %d != ok %d", c.Name, tiered, c.OK)
		}
		sent += c.Sent
		ok += c.OK
		shed += c.Shed
		errs += c.Errors
		retries += c.Retries
	}
	t := f.Totals
	if t.Sent != sent || t.OK != ok || t.Shed != shed || t.Errors != errs || t.Retries != retries {
		return fmt.Errorf("totals %+v disagree with class sums (%d/%d/%d/%d/%d)", t, sent, ok, shed, errs, retries)
	}
	if t.Sent > 0 && t.AchievedQPS <= 0 {
		return fmt.Errorf("achieved_qps missing")
	}
	classNames := make(map[string]bool, len(f.Classes))
	for _, c := range f.Classes {
		classNames[c.Name] = true
	}
	for i, s := range f.Samples {
		if !classNames[s.Class] {
			return fmt.Errorf("sample %d names unknown class %q", i, s.Class)
		}
		if s.Status == http.StatusOK && s.TraceID == "" {
			return fmt.Errorf("sample %d: OK answer without a trace_id", i)
		}
	}
	if m := f.Metrics; m.ScrapedMidRun {
		if m.Families <= 0 || m.Samples <= 0 {
			return fmt.Errorf("metrics scrape empty: %+v", m)
		}
		if m.HistogramSeries <= 0 {
			return fmt.Errorf("metrics scrape saw no histogram samples")
		}
		if len(m.LintErrors) > 0 {
			return fmt.Errorf("metrics scrape recorded lint errors: %v", m.LintErrors)
		}
	}
	return nil
}
