//go:build race

package main

// raceEnabled reports whether the race detector is compiled in. The
// strict replay comparison is distribution-level over server timing;
// the detector's ~10× slowdown changes which budgeted queries shed,
// so tier shares only reproduce on comparably-timed binaries.
const raceEnabled = true
