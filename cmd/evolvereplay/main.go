// Command evolvereplay replays an edge-mutation stream against the
// influence-maximization pipeline and measures what the evolving-graph
// subsystem (internal/evolve) buys: per-batch incremental-repair latency
// (p50/p99), the incremental-vs-cold-resample speedup, the fraction of RR
// sets each batch really perturbs, and the churn of the selected seed set
// as the graph drifts.
//
// The stream is either synthetic — random edge inserts/deletes (and
// optional node growth) generated against the live graph — or a
// timestamped file replayed faithfully:
//
//	# timestamp op from to   (op is + or -; equal timestamps form one batch)
//	10 + 3 17
//	10 - 5 2
//	11 + 99 4
//
// Every -cold-every batches the maintained collection is checked
// bit-for-bit against a cold resample on the current snapshot — the
// subsystem's core guarantee — and the cold timing anchors the speedup.
//
// Example:
//
//	evolvereplay -profile nethept -scale tiny -k 20 -batches 50 -batch-edges 32
//	evolvereplay -graph network.txt -model lt -stream edits.txt -v
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/diffusion"
	"repro/internal/evolve"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/tim"
)

type config struct {
	profile   string
	scale     string
	graphPath string
	model     string
	stream    string
	k         int
	eps       float64
	seed      uint64
	batches   int
	batchEdge int
	growEvery int
	coldEvery int
	trace     bool
	workers   int
	verbose   bool
	out       io.Writer
}

func main() {
	cfg := config{out: os.Stdout}
	flag.StringVar(&cfg.profile, "profile", "nethept", "Table 2 synthetic profile (nethept, epinions, dblp, livejournal, twitter)")
	flag.StringVar(&cfg.scale, "scale", "tiny", "profile scale (tiny, small, full)")
	flag.StringVar(&cfg.graphPath, "graph", "", "edge-list file to load instead of a profile")
	flag.StringVar(&cfg.model, "model", "ic", "diffusion model: ic or lt")
	flag.StringVar(&cfg.stream, "stream", "", "timestamped mutation stream file (overrides synthetic generation)")
	flag.IntVar(&cfg.k, "k", 10, "seed-set size")
	flag.Float64Var(&cfg.eps, "eps", 0.2, "approximation slack epsilon")
	flag.Uint64Var(&cfg.seed, "seed", 1, "master seed (graph generation, sampling, synthetic mutations)")
	flag.IntVar(&cfg.batches, "batches", 12, "synthetic mutation batches to replay")
	flag.IntVar(&cfg.batchEdge, "batch-edges", 8, "edge mutations per synthetic batch (half inserts, half deletes)")
	flag.IntVar(&cfg.growEvery, "grow-every", 0, "add one node every this many synthetic batches (0 = never)")
	flag.IntVar(&cfg.coldEvery, "cold-every", 4, "verify + time a cold resample every this many batches (0 = never)")
	flag.BoolVar(&cfg.trace, "trace", false, "maintain edge provenance and report the membership-risk vs alignment split per batch")
	flag.IntVar(&cfg.workers, "workers", 0, "sampling workers (0 = all cores)")
	flag.BoolVar(&cfg.verbose, "v", false, "per-batch output")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "evolvereplay:", err)
		os.Exit(1)
	}
}

// replayState is the maintained pipeline state the CollectionSource serves
// node selection from.
type replayState struct {
	col    *diffusion.RRCollection
	widths []int64
	seed   uint64
}

// NodeSelectionSets implements tim.CollectionSource over the maintained
// collection, extending it when θ outgrows it.
func (s *replayState) NodeSelectionSets(ctx context.Context, g *graph.Graph, model diffusion.Model, theta int64, workers int) (*diffusion.RRCollection, error) {
	if int64(s.col.Count()) < theta {
		tail, err := diffusion.ExtendCollection(ctx, g, model, s.col, theta, s.seed, workers, nil)
		if err != nil {
			return nil, err
		}
		s.widths = append(s.widths, tail...)
	}
	var total int64
	for _, w := range s.widths[:theta] {
		total += w
	}
	return s.col.Prefix(int(theta), total), nil
}

func run(cfg config) error {
	model, err := parseModel(cfg.model)
	if err != nil {
		return err
	}
	g, source, err := buildGraph(cfg, model)
	if err != nil {
		return err
	}
	policy, err := policyFor(model, cfg.seed)
	if err != nil {
		return err
	}
	eg := evolve.New(g, policy, evolve.Options{})
	snap, version := eg.Snapshot()
	fmt.Fprintf(cfg.out, "evolvereplay: dataset=%s model=%s n=%d m=%d k=%d eps=%g\n",
		source, model, snap.N(), snap.M(), cfg.k, cfg.eps)

	state := &replayState{col: &diffusion.RRCollection{Off: []int64{0}}, seed: cfg.seed ^ 0x9e3779b97f4a7c15}
	opts := tim.Options{K: cfg.k, Epsilon: cfg.eps, Workers: cfg.workers, Seed: cfg.seed, Source: state}
	ctx := context.Background()

	res, err := tim.MaximizeContext(ctx, snap, model, opts)
	if err != nil {
		return err
	}
	prevSeeds := res.Seeds
	fmt.Fprintf(cfg.out, "initial: theta=%d spread~%.1f seeds=%v\n", res.Theta, res.SpreadEstimate, res.Seeds)

	var traces *diffusion.TraceCollection
	if cfg.trace {
		traces = retrace(snap, model, state, nil, nil)
	}

	batches, err := loadBatches(cfg, eg)
	if err != nil {
		return err
	}

	var (
		repairMs    []float64
		coldMs      []float64
		repairedTot int64
		keptTot     int64
		riskTot     int
		jaccards    []float64
		coldChecks  int
	)
	for step, b := range batches {
		nBefore := eg.N()
		if _, err := eg.Apply(b); err != nil {
			return fmt.Errorf("batch %d: %w", step+1, err)
		}
		delta, ok := eg.DeltaSince(version)
		if !ok {
			return fmt.Errorf("batch %d: delta log exhausted", step+1)
		}
		newSnap, newVersion := eg.Snapshot()

		var imp evolve.Impact
		var affected []int32
		if cfg.trace {
			// The previous maximize may have extended the collection;
			// trace the new tail (sampled on the pre-batch snapshot)
			// before judging the batch's impact.
			traces = retrace(snap, model, state, traces, nil)
			imp = evolve.DeltaImpact(state.col, traces, b, nBefore, eg.N(), state.seed)
			riskTot += imp.MembershipRisk
			// Computed against the pre-repair membership — the same sets
			// Repair is about to re-derive — so the trace arena can be
			// patched instead of rebuilt.
			affected, _ = evolve.AffectedSets(state.col, delta, state.seed)
		}

		t0 := time.Now()
		newCol, newWidths, stats, err := evolve.Repair(ctx, newSnap, model, state.col, state.widths, delta, state.seed, cfg.workers)
		if err != nil {
			return fmt.Errorf("batch %d: repair: %w", step+1, err)
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000
		repairMs = append(repairMs, ms)
		repairedTot += stats.Repaired
		keptTot += stats.Reused
		state.col, state.widths = newCol, newWidths
		snap, version = newSnap, newVersion

		if cfg.trace {
			traces = retrace(snap, model, state, traces, affected)
		}

		res, err := tim.MaximizeContext(ctx, snap, model, opts)
		if err != nil {
			return fmt.Errorf("batch %d: maximize: %w", step+1, err)
		}
		j := jaccard(prevSeeds, res.Seeds)
		jaccards = append(jaccards, j)
		prevSeeds = res.Seeds

		var coldNote string
		if cfg.coldEvery > 0 && (step+1)%cfg.coldEvery == 0 {
			t1 := time.Now()
			cold := &diffusion.RRCollection{Off: []int64{0}}
			coldWidths, err := diffusion.ExtendCollection(ctx, snap, model, cold, int64(state.col.Count()), state.seed, cfg.workers, nil)
			if err != nil {
				return err
			}
			cms := float64(time.Since(t1).Microseconds()) / 1000
			coldMs = append(coldMs, cms)
			if err := compareCollections(state.col, cold, state.widths, coldWidths); err != nil {
				return fmt.Errorf("batch %d: repaired collection diverged from cold sample: %w", step+1, err)
			}
			coldChecks++
			coldNote = fmt.Sprintf(" cold=%.1fms speedup=%.1fx", cms, cms/ms)
		}
		if cfg.verbose {
			traceNote := ""
			if cfg.trace {
				traceNote = fmt.Sprintf(" risk=%d align-only=%d", imp.MembershipRisk, imp.AlignmentOnly)
			}
			fmt.Fprintf(cfg.out, "batch %3d: v=%d n=%d m=%d repaired=%d/%d repair=%.1fms theta=%d jaccard=%.2f%s%s\n",
				step+1, version, snap.N(), snap.M(), stats.Repaired, stats.Sets, ms, res.Theta, j, traceNote, coldNote)
		}
	}

	fmt.Fprintf(cfg.out, "replayed %d batches to version %d (n=%d m=%d, collection %d sets)\n",
		len(batches), version, snap.N(), snap.M(), state.col.Count())
	if len(repairMs) > 0 {
		total := repairedTot + keptTot
		fmt.Fprintf(cfg.out, "repair latency: p50=%.1fms p99=%.1fms mean=%.1fms\n",
			percentile(repairMs, 0.50), percentile(repairMs, 0.99), mean(repairMs))
		fmt.Fprintf(cfg.out, "sets repaired: %d of %d examined (%.2f%%)\n",
			repairedTot, total, 100*float64(repairedTot)/float64(max64(total, 1)))
	}
	if cfg.trace {
		fmt.Fprintf(cfg.out, "membership-risk sets (provenance bound): %d vs %d re-derived for stream alignment\n",
			riskTot, repairedTot)
	}
	if len(coldMs) > 0 {
		fmt.Fprintf(cfg.out, "cold resample: mean=%.1fms -> mean speedup %.1fx (%d checks, all bit-identical)\n",
			mean(coldMs), mean(coldMs)/mean(repairMs), coldChecks)
	}
	if len(jaccards) > 0 {
		fmt.Fprintf(cfg.out, "seed churn: mean jaccard %.2f, min %.2f\n", mean(jaccards), minOf(jaccards))
	}
	return nil
}

// retrace (re)builds the provenance arena: with affected == nil the whole
// collection is traced from its keyed streams; otherwise only the listed
// sets are re-traced and the rest copied over.
func retrace(g *graph.Graph, model diffusion.Model, state *replayState, old *diffusion.TraceCollection, affected []int32) *diffusion.TraceCollection {
	sampler := diffusion.NewRRSampler(g, model)
	base := rng.New(state.seed)
	var stream rng.Rand
	out := &diffusion.TraceCollection{Off: []int64{0}}
	var buf []uint32
	var tbuf []diffusion.TraceEdge
	redo := make(map[int32]bool, len(affected))
	for _, i := range affected {
		redo[i] = true
	}
	for i := 0; i < state.col.Count(); i++ {
		if old != nil && i < old.Count() && !redo[int32(i)] {
			out.Append(old.Set(i))
			continue
		}
		base.SplitInto(uint64(i), &stream)
		buf, tbuf, _ = sampler.SampleTraced(&stream, buf[:0], tbuf[:0])
		out.Append(tbuf)
	}
	return out
}

func buildGraph(cfg config, model diffusion.Model) (*graph.Graph, string, error) {
	var g *graph.Graph
	var source string
	if cfg.graphPath != "" {
		f, err := os.Open(cfg.graphPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		g, err = graph.ReadEdgeList(f, false)
		if err != nil {
			return nil, "", err
		}
		source = cfg.graphPath
	} else {
		p, err := gen.ProfileByName(cfg.profile)
		if err != nil {
			return nil, "", err
		}
		scale, err := gen.ParseScale(cfg.scale)
		if err != nil {
			return nil, "", err
		}
		g = p.Generate(scale, cfg.seed)
		source = fmt.Sprintf("profile:%s:%s", cfg.profile, cfg.scale)
	}
	switch model.Kind() {
	case diffusion.IC:
		graph.AssignWeightedCascade(g)
	case diffusion.LT:
		graph.AssignRandomNormalizedLTKeyed(g, cfg.seed+1)
	}
	return g, source, nil
}

func policyFor(model diffusion.Model, seed uint64) (evolve.WeightPolicy, error) {
	switch model.Kind() {
	case diffusion.IC:
		return evolve.WeightedCascade{}, nil
	case diffusion.LT:
		return evolve.NewKeyedNormalizedLT(seed + 1), nil
	}
	return nil, fmt.Errorf("no weight policy for model %v", model)
}

func parseModel(name string) (diffusion.Model, error) {
	switch strings.ToLower(name) {
	case "", "ic":
		return diffusion.NewIC(), nil
	case "lt":
		return diffusion.NewLT(), nil
	}
	return diffusion.Model{}, fmt.Errorf("unknown model %q (want ic or lt)", name)
}

// loadBatches either parses the -stream file or synthesizes cfg.batches
// random batches against the evolving graph's current state.
func loadBatches(cfg config, eg *evolve.Graph) ([]evolve.Batch, error) {
	if cfg.stream != "" {
		return parseStream(cfg.stream, eg.N())
	}
	r := rng.New(cfg.seed + 2)
	batches := make([]evolve.Batch, 0, cfg.batches)
	// Mutations are generated against a mirror of the live edge list so
	// deletes always name real edges even before the batches are applied.
	edges := eg.Edges()
	n := eg.N()
	for i := 0; i < cfg.batches; i++ {
		var b evolve.Batch
		if cfg.growEvery > 0 && (i+1)%cfg.growEvery == 0 {
			b.AddNodes = 1
		}
		for j := 0; j < cfg.batchEdge; j++ {
			if j%2 == 0 || len(edges) == 0 {
				e := graph.Edge{From: uint32(r.Intn(n)), To: uint32(r.Intn(n)), Weight: 0.5}
				b.Inserts = append(b.Inserts, e)
				edges = append(edges, e)
			} else {
				pick := r.Intn(len(edges))
				v := edges[pick]
				b.Deletes = append(b.Deletes, evolve.EdgeKey{From: v.From, To: v.To})
				// Mirror Delete's latest-occurrence semantics.
				for q := len(edges) - 1; q >= 0; q-- {
					if edges[q].From == v.From && edges[q].To == v.To {
						edges = append(edges[:q], edges[q+1:]...)
						break
					}
				}
			}
		}
		n += b.AddNodes
		batches = append(batches, b)
	}
	return batches, nil
}

// parseStream reads "timestamp op from to" lines; equal timestamps form
// one batch, and endpoints beyond the current node count imply growth.
func parseStream(path string, n int) ([]evolve.Batch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	var batches []evolve.Batch
	var cur *evolve.Batch
	lastT := ""
	lineNo := 0
	curN := n // node count as of the batch being assembled
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("%s:%d: want \"timestamp op from to\", got %q", path, lineNo, line)
		}
		from, err1 := strconv.ParseUint(fields[2], 10, 32)
		to, err2 := strconv.ParseUint(fields[3], 10, 32)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%s:%d: bad endpoints in %q", path, lineNo, line)
		}
		if fields[0] != lastT || cur == nil {
			if cur != nil {
				curN += cur.AddNodes
			}
			batches = append(batches, evolve.Batch{})
			cur = &batches[len(batches)-1]
			lastT = fields[0]
		}
		for _, id := range []uint64{from, to} {
			if m := int(id) + 1; m > curN+cur.AddNodes {
				cur.AddNodes = m - curN
			}
		}
		switch fields[1] {
		case "+":
			cur.Inserts = append(cur.Inserts, graph.Edge{From: uint32(from), To: uint32(to), Weight: 0.5})
		case "-":
			cur.Deletes = append(cur.Deletes, evolve.EdgeKey{From: uint32(from), To: uint32(to)})
		default:
			return nil, fmt.Errorf("%s:%d: op %q is not + or -", path, lineNo, fields[1])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return batches, nil
}

// compareCollections reports the first divergence between a repaired and
// a cold-sampled collection.
func compareCollections(got, want *diffusion.RRCollection, gotW, wantW []int64) error {
	if got.Count() != want.Count() || got.TotalWidth != want.TotalWidth {
		return fmt.Errorf("shape: %d sets width %d vs %d sets width %d",
			got.Count(), got.TotalWidth, want.Count(), want.TotalWidth)
	}
	for i := range want.Off {
		if got.Off[i] != want.Off[i] {
			return fmt.Errorf("offset %d: %d vs %d", i, got.Off[i], want.Off[i])
		}
	}
	for i := range want.Flat {
		if got.Flat[i] != want.Flat[i] {
			return fmt.Errorf("member %d: %d vs %d", i, got.Flat[i], want.Flat[i])
		}
	}
	for i := range wantW {
		if gotW[i] != wantW[i] {
			return fmt.Errorf("width %d: %d vs %d", i, gotW[i], wantW[i])
		}
	}
	return nil
}

func jaccard(a, b []uint32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	setA := make(map[uint32]bool, len(a))
	for _, v := range a {
		setA[v] = true
	}
	inter := 0
	for _, v := range b {
		if setA[v] {
			inter++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
