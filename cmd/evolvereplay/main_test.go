package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baseConfig(out *bytes.Buffer) config {
	return config{
		profile:   "nethept",
		scale:     "tiny",
		model:     "ic",
		k:         5,
		eps:       0.3,
		seed:      1,
		batches:   4,
		batchEdge: 6,
		coldEvery: 2,
		workers:   2,
		out:       out,
	}
}

// TestRunSynthetic drives the full replay loop, including the embedded
// bit-identity checks against cold resamples (run fails if any diverge).
func TestRunSynthetic(t *testing.T) {
	var out bytes.Buffer
	cfg := baseConfig(&out)
	cfg.verbose = true
	cfg.growEvery = 3
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"repair latency: p50=", "sets repaired:", "cold resample:", "bit-identical", "seed churn:"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunLTWithTrace(t *testing.T) {
	var out bytes.Buffer
	cfg := baseConfig(&out)
	cfg.model = "lt"
	cfg.trace = true
	cfg.batches = 3
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "membership-risk") {
		t.Errorf("trace mode output missing impact line:\n%s", out.String())
	}
}

// TestRunStream replays a timestamped file, including growth to a node id
// beyond the initial graph.
func TestRunStream(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(gpath, []byte("# nodes=6 edges=6\n0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spath := filepath.Join(dir, "edits.txt")
	stream := "# t op u v\n1 + 0 3\n1 - 1 2\n2 + 6 0\n2 + 0 6\n3 - 0 3\n"
	if err := os.WriteFile(spath, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	cfg := baseConfig(&out)
	cfg.graphPath = gpath
	cfg.stream = spath
	cfg.k = 2
	cfg.coldEvery = 1
	if err := run(cfg); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "replayed 3 batches") {
		t.Errorf("stream batching wrong:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	cfg := baseConfig(&out)
	cfg.model = "bogus"
	if err := run(cfg); err == nil {
		t.Error("bogus model accepted")
	}
	cfg = baseConfig(&out)
	cfg.profile = "not-a-profile"
	if err := run(cfg); err == nil {
		t.Error("bogus profile accepted")
	}
	cfg = baseConfig(&out)
	cfg.graphPath = "/does/not/exist"
	if err := run(cfg); err == nil {
		t.Error("missing graph accepted")
	}
}
