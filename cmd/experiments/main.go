// Command experiments regenerates the paper's evaluation artifacts:
// Table 2 and Figures 3 through 12, one experiment id at a time or all of
// them. Reports print as aligned text tables and can also be written as
// TSV files for plotting.
//
// Examples:
//
//	experiments -id table2
//	experiments -id fig3 -scale tiny
//	experiments -id all -scale small -tsv-dir results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/exp"
	"repro/internal/gen"
)

func main() {
	var (
		id      = flag.String("id", "", "experiment id ("+strings.Join(exp.IDs(), "|")+") or 'all'")
		scale   = flag.String("scale", "tiny", "dataset scale: tiny|small|full")
		seed    = flag.Uint64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "sampling workers (0 = all cores)")
		kList   = flag.String("k", "", "comma-separated k sweep (default 1,10,20,30,40,50)")
		eps     = flag.Float64("eps", 0.1, "epsilon for fixed-epsilon experiments")
		celfR   = flag.Int("celf-r", 200, "Monte-Carlo samples per CELF++ estimate")
		risCap  = flag.Int64("ris-cap", 20_000_000, "RIS cost cap (0 = faithful tau; may run very long)")
		mc      = flag.Int("mc", 10000, "Monte-Carlo samples for spread evaluation")
		tsvDir  = flag.String("tsv-dir", "", "also write <id>.tsv files into this directory")
		verify  = flag.Bool("verify", false, "run the registered shape checks after each report and fail on violations")
	)
	flag.Parse()
	if *id == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*id, *scale, *seed, *workers, *kList, *eps, *celfR, *risCap, *mc, *tsvDir, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(id, scale string, seed uint64, workers int, kList string,
	eps float64, celfR int, risCap int64, mc int, tsvDir string, verify bool) error {

	sc, err := gen.ParseScale(scale)
	if err != nil {
		return err
	}
	cfg := exp.Config{
		Scale:      sc,
		Seed:       seed,
		Workers:    workers,
		Epsilon:    eps,
		CelfR:      celfR,
		RISCostCap: risCap,
		MCSamples:  mc,
	}
	if kList != "" {
		for _, part := range strings.Split(kList, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -k list: %w", err)
			}
			cfg.KValues = append(cfg.KValues, k)
		}
	}

	ids := []string{id}
	if id == "all" {
		ids = exp.IDs()
	}
	for _, one := range ids {
		rep, err := exp.Run(one, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", one, err)
		}
		if _, err := rep.WriteTo(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if verify {
			findings, registered := exp.CheckShape(rep)
			violations := 0
			for _, f := range findings {
				status := "ok"
				if !f.OK {
					status = "VIOLATED"
					violations++
				}
				fmt.Printf("shape %-8s %s (%s)\n", status, f.Claim, f.Got)
			}
			if registered && violations > 0 {
				return fmt.Errorf("%s: %d shape claims violated", one, violations)
			}
			if !registered {
				fmt.Printf("shape: no registered checks for %s\n", one)
			}
		}
		if tsvDir != "" {
			if err := os.MkdirAll(tsvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(tsvDir, one+".tsv")
			if err := os.WriteFile(path, []byte(rep.TSV()), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "experiments: wrote %s\n", path)
		}
	}
	return nil
}
