package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable2WritesTSV(t *testing.T) {
	dir := t.TempDir()
	if err := run("table2", "tiny", 1, 1, "", 0.3, 20, 100_000, 200, dir, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table2.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "nethept") || !strings.Contains(text, "twitter") {
		t.Fatalf("tsv content: %.120q", text)
	}
	lines := strings.Count(strings.TrimSpace(text), "\n")
	if lines != 5 { // header + 5 rows - 1
		t.Fatalf("tsv line count: %d", lines)
	}
}

func TestRunCustomKList(t *testing.T) {
	if err := run("abl-refine", "tiny", 1, 1, "2, 4", 0.4, 20, 100_000, 200, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithVerify(t *testing.T) {
	// fig12 has registered shape checks; at tiny scale with small k the
	// IC >= LT memory claim holds, so -verify must pass.
	if err := run("fig12", "tiny", 1, 0, "10", 0.3, 20, 100_000, 500, "", true); err != nil {
		t.Fatal(err)
	}
	// table2 has no registered checks; -verify must not fail.
	if err := run("table2", "tiny", 1, 1, "", 0.3, 20, 100_000, 200, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("fig99", "tiny", 1, 1, "", 0.3, 20, 0, 200, "", false); err == nil {
		t.Error("unknown id accepted")
	}
	if err := run("table2", "massive", 1, 1, "", 0.3, 20, 0, 200, "", false); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run("table2", "tiny", 1, 1, "1,two", 0.3, 20, 0, 200, "", false); err == nil {
		t.Error("bad k list accepted")
	}
}
