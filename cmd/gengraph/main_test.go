package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFamilies(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name   string
		family string
	}{
		{"ba", "ba"}, {"er", "er"}, {"ws", "ws"}, {"chunglu", "chunglu"}, {"community", "community"},
	}
	for _, c := range cases {
		out := filepath.Join(dir, c.name+".txt")
		err := run("", "tiny", c.family, 200, 800, 3, 4, 0.1, 2.4, 2.1, 4, 0.05, 0.001, "", 1, false, out)
		if err != nil {
			t.Errorf("family %s: %v", c.family, err)
			continue
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "# nodes=") {
			t.Errorf("family %s: missing header: %.40q", c.family, string(data))
		}
	}
}

func TestRunProfileBinary(t *testing.T) {
	out := filepath.Join(t.TempDir(), "p.timg")
	err := run("nethept", "tiny", "", 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, "wc", 1, true, out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:4]) != "TIMG" {
		t.Fatalf("binary magic: %q", data[:4])
	}
}

func TestRunWeightSchemes(t *testing.T) {
	dir := t.TempDir()
	for _, w := range []string{"wc", "lt-random", "trivalency", "uniform:0.05"} {
		out := filepath.Join(dir, strings.ReplaceAll(w, ":", "_")+".txt")
		if err := run("", "tiny", "er", 50, 200, 0, 0, 0, 0, 0, 0, 0, 0, w, 1, false, out); err != nil {
			t.Errorf("weights %s: %v", w, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nethept", "tiny", "ba", 10, 0, 2, 0, 0, 0, 0, 0, 0, 0, "", 1, false, ""); err == nil {
		t.Error("profile+family accepted")
	}
	if err := run("", "tiny", "", 10, 0, 0, 0, 0, 0, 0, 0, 0, 0, "", 1, false, ""); err == nil {
		t.Error("neither profile nor family accepted")
	}
	if err := run("orkut", "tiny", "", 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, "", 1, false, ""); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := run("", "tiny", "er", 50, 200, 0, 0, 0, 0, 0, 0, 0, 0, "bogus", 1, false, ""); err == nil {
		t.Error("unknown weights accepted")
	}
}
