// Command gengraph synthesizes graphs and writes them as edge lists or in
// the compact TIMG binary format.
//
// Examples:
//
//	gengraph -profile nethept -scale small -out nethept.txt
//	gengraph -family ba -n 10000 -attach 3 -out ba.txt
//	gengraph -family chunglu -n 50000 -m 500000 -binary -out cl.timg
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		profile = flag.String("profile", "", "dataset profile: nethept|epinions|dblp|livejournal|twitter")
		scale   = flag.String("scale", "tiny", "profile scale: tiny|small|full")
		family  = flag.String("family", "", "random family: ba|er|ws|chunglu|community")
		n       = flag.Int("n", 1000, "node count (family generators)")
		m       = flag.Int("m", 5000, "edge count (er, chunglu)")
		attach  = flag.Int("attach", 3, "attachment degree (ba)")
		kNear   = flag.Int("ws-k", 4, "ring neighbors (ws)")
		beta    = flag.Float64("ws-beta", 0.1, "rewire probability (ws)")
		gammaO  = flag.Float64("gamma-out", 2.4, "out-degree exponent (chunglu)")
		gammaI  = flag.Float64("gamma-in", 2.1, "in-degree exponent (chunglu)")
		comms   = flag.Int("communities", 4, "community count (community)")
		pIn     = flag.Float64("p-in", 0.05, "intra-community probability (community)")
		pOut    = flag.Float64("p-out", 0.001, "inter-community probability (community)")
		weights = flag.String("weights", "", "optional weight scheme to bake in: wc|lt-random|trivalency|uniform:<p>")
		seed    = flag.Uint64("seed", 1, "random seed")
		binary  = flag.Bool("binary", false, "write TIMG binary instead of text")
		out     = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()
	if err := run(*profile, *scale, *family, *n, *m, *attach, *kNear, *beta,
		*gammaO, *gammaI, *comms, *pIn, *pOut, *weights, *seed, *binary, *out); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run(profile, scale, family string, n, m, attach, kNear int, beta,
	gammaO, gammaI float64, comms int, pIn, pOut float64,
	weights string, seed uint64, binary bool, out string) error {

	var (
		g   *repro.Graph
		err error
	)
	switch {
	case profile != "" && family != "":
		return fmt.Errorf("-profile and -family are mutually exclusive")
	case profile != "":
		g, err = repro.GenerateDataset(profile, scale, seed)
	case family == "ba":
		g = repro.GenerateBarabasiAlbert(n, attach, seed)
	case family == "er":
		g = repro.GenerateErdosRenyi(n, m, seed)
	case family == "ws":
		g = repro.GenerateWattsStrogatz(n, kNear, beta, seed)
	case family == "chunglu":
		g = repro.GenerateChungLu(n, m, gammaO, gammaI, seed)
	case family == "community":
		g = repro.GenerateCommunity(n, comms, pIn, pOut, seed)
	default:
		return fmt.Errorf("one of -profile or -family is required")
	}
	if err != nil {
		return err
	}

	switch weights {
	case "":
	case "wc":
		repro.UseWeightedCascade(g)
	case "lt-random":
		repro.UseRandomLTWeights(g, seed)
	case "trivalency":
		repro.UseTrivalency(g, seed)
	default:
		var p float64
		if _, serr := fmt.Sscanf(weights, "uniform:%g", &p); serr != nil {
			return fmt.Errorf("unknown weight scheme %q", weights)
		}
		if werr := repro.UseUniformIC(g, float32(p)); werr != nil {
			return werr
		}
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	st := repro.Stats(g)
	fmt.Fprintf(os.Stderr, "gengraph: n=%d m=%d avg_degree=%.2f\n", st.Nodes, st.Edges, st.AverageDegree)
	if binary {
		return repro.SaveBinary(w, g)
	}
	return repro.SaveEdgeList(w, g)
}
