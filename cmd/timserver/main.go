// Command timserver serves influence-maximization queries over HTTP: it
// loads a registry of named graphs once at startup and answers repeated
// (k, ε, model) queries from an LRU result cache and an RR-collection
// reuse layer, instead of paying the full TIM+ pipeline per invocation
// the way timcli does.
//
// Example:
//
//	timserver -listen :8080 \
//	    -dataset nethept=profile:nethept:tiny \
//	    -dataset mygraph=file:network.txt
//
//	curl -s localhost:8080/v1/maximize -d '{"dataset":"nethept","k":20,"epsilon":0.1}'
//	curl -s localhost:8080/v1/maximize -d '{"dataset":"nethept","k":10,"weights":{"17":10},"weight_default":0.1,"max_hops":4}'
//	curl -s localhost:8080/v1/spread   -d '{"dataset":"nethept","seeds":[1,2,3]}'
//	curl -s localhost:8080/v1/update   -d '{"dataset":"nethept","insert":[{"from":3,"to":9}],"delete":[{"from":1,"to":2}]}'
//	curl -s localhost:8080/v1/stats
//
// Datasets are live: /v1/update applies batched edge inserts/deletes and
// node growth through the evolving-graph layer, warm RR collections are
// repaired incrementally instead of dropped, and every query reports the
// graph_version it was answered at. With -wal-dir set, every acked batch
// is also appended to a per-dataset write-ahead log (fsynced per
// -wal-sync) and checkpointed every -checkpoint-every batches, so a
// restart — clean or kill -9 — recovers each dataset to its last durable
// version and answers bit-identically to a server that never crashed. Queries are constrainable: targeted
// audience weights, budgets over per-node costs, forced/excluded seeds,
// and deadline-bounded diffusion (README "Constrained queries");
// POST /v1/query/batch answers a list of such queries in one round-trip.
//
// Endpoints: POST /v1/maximize, POST /v1/query/batch, POST /v1/spread,
// POST /v1/update, GET /v1/stats, GET /v1/datasets, GET /v1/capacity,
// GET /v1/health/slo, GET /healthz. The server drains in-flight
// requests on SIGINT/SIGTERM before exiting, then flushes the -qlog
// flight recorder.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only on -debug-addr
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

// datasetFlags collects repeated -dataset name=source flags.
type datasetFlags []string

func (d *datasetFlags) String() string { return strings.Join(*d, ",") }

func (d *datasetFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func main() {
	var datasets datasetFlags
	var (
		listen    = flag.String("listen", ":8080", "address to listen on")
		cacheSize = flag.Int("cache", 256, "LRU result cache capacity (entries)")
		rrCap     = flag.Int("rr-collections", 64, "max live RR collections in the reuse layer (LRU-evicted beyond)")
		maxTheta  = flag.Int64("max-theta", 4_000_000, "cap on RR sets sampled per query (tiny-epsilon OOM guard; responses report theta_capped)")
		timeout   = flag.Duration("timeout", 60*time.Second, "per-request computation timeout")
		workers   = flag.Int("workers", 0, "per-query parallelism for sampling and selection (0 = all cores; answers identical for every value)")
		seed      = flag.Uint64("seed", 1, "base seed for the RR reuse layer and default query seed")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain window")
		deltaLog  = flag.Int("delta-log", 0, "mutations retained per dataset for incremental RR repair (0 = default 1M; older warm collections reset cold)")
		batchPar  = flag.Int("batch-parallel", 0, "max /v1/query/batch items executed concurrently (0 = all cores, 1 = sequential; answers unchanged)")
		inFlight  = flag.Int("max-inflight", 0, "admission bound on concurrent queries; budgeted requests beyond it are shed with 503+Retry-After (0 = 2×cores)")
		ladderStr = flag.String("eps-ladder", "", "comma-separated ε rungs for budgeted escalation, e.g. 0.1,0.2,0.5 (empty = built-in ladder)")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error (info logs one line per compute request; debug adds introspection scrapes)")
		debugAddr = flag.String("debug-addr", "", "separate listen address for net/http/pprof profiling endpoints (empty = disabled)")
		traceRing = flag.Int("trace-ring", 0, "completed request traces kept for GET /v1/trace/{id} and /v1/trace/slow (0 = default 256, negative = tracing off)")
		qlogPath  = flag.String("qlog", "", "query flight-recorder output path (JSONL; empty = recording off); replay with timload -replay")
		qlogSamp  = flag.Int("qlog-sample", 1, "record every Nth query in the flight recorder")
		qlogMax   = flag.Int("qlog-max", 0, "max records the flight recorder writes (0 = default 100000, negative = unbounded)")
		memBudget = flag.Int64("mem-budget", 0, "memory budget in bytes for ledger-accounted state; /v1/capacity reports headroom against it, and with -spill-dir it also demotes LRU RR collections to disk past the budget (0 = unbudgeted)")
		spillDir  = flag.String("spill-dir", "", "directory for the out-of-core spill tier: evicted RR collections demote to files here and promote back on their next query; also backs -mmap-datasets (empty = tier off)")
		diskBudg  = flag.Int64("disk-budget", 0, "disk budget in bytes for the spill tier; the oldest spilled collection is dropped beyond it (0 = unbudgeted)")
		mmapData  = flag.Bool("mmap-datasets", false, "serve synthetic datasets' CSR snapshots from memory-mapped files under -spill-dir instead of the heap (requires -spill-dir; ignored on platforms without mmap)")
		sloObj    = flag.Float64("slo-objective", 0, "tolerated bad fraction per tier class for /v1/health/slo error budgets (0 = default 0.01)")
		walDir    = flag.String("wal-dir", "", "directory for per-dataset update WALs and checkpoints; updates are replayed from it on restart (empty = durability off)")
		walSync   = flag.String("wal-sync", "always", "WAL fsync policy: always (fsync per acked batch), interval (background, bounded loss window), or none (OS decides)")
		walEvery  = flag.Duration("wal-sync-interval", 0, "fsync cadence for -wal-sync=interval (0 = default 200ms)")
		ckptEvery = flag.Int("checkpoint-every", 0, "checkpoint and truncate a dataset's WAL every N batches (0 = default 64, negative = never)")
	)
	flag.Var(&datasets, "dataset",
		"named dataset to serve, name=source (repeatable); source is file:PATH, ufile:PATH, profile:NAME:SCALE, ba:N:ATTACH, or er:N:M")
	flag.Parse()

	ladder, err := parseLadder(*ladderStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "timserver:", err)
		os.Exit(2)
	}
	if *mmapData && *spillDir == "" {
		fmt.Fprintln(os.Stderr, "timserver: -mmap-datasets requires -spill-dir")
		os.Exit(2)
	}
	logger, err := newLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "timserver:", err)
		os.Exit(2)
	}
	cfg := server.Config{
		CacheSize:         *cacheSize,
		RRCollections:     *rrCap,
		MaxTheta:          *maxTheta,
		RequestTimeout:    *timeout,
		Workers:           *workers,
		Seed:              *seed,
		MaxDeltaLog:       *deltaLog,
		BatchParallelism:  *batchPar,
		MaxInFlight:       *inFlight,
		EpsLadder:         ladder,
		TraceRing:         *traceRing,
		AccessLog:         logger,
		MemoryBudgetBytes: *memBudget,
		SpillDir:          *spillDir,
		DiskBudgetBytes:   *diskBudg,
		MmapDatasets:      *mmapData,
		QLogPath:          *qlogPath,
		QLogSample:        *qlogSamp,
		QLogMaxRecords:    *qlogMax,
		SLOObjective:      *sloObj,
		WALDir:            *walDir,
		WALSync:           *walSync,
		WALSyncEvery:      *walEvery,
		CheckpointEvery:   *ckptEvery,
	}
	if err := run(*listen, datasets, cfg, *drain, logger, *debugAddr); err != nil {
		logger.Error("exiting", "err", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger: structured key=value lines on
// stderr, filtered at the requested level.
func newLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("bad -log-level %q: want debug, info, warn, or error", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

// parseLadder turns a comma-separated flag value into ε rungs; the
// server normalizes (sorts, dedups, range-checks) the result.
func parseLadder(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	ladder := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -eps-ladder entry %q: %w", p, err)
		}
		ladder = append(ladder, v)
	}
	return ladder, nil
}

func run(listen string, datasets []string, cfg server.Config,
	drain time.Duration, logger *slog.Logger, debugAddr string) error {

	if len(datasets) == 0 {
		return fmt.Errorf("at least one -dataset name=source is required")
	}
	specs := make([]server.DatasetSpec, 0, len(datasets))
	for _, d := range datasets {
		spec, err := server.ParseDatasetSpec(d, cfg.Seed)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
	}
	cfg.Datasets = specs
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}

	// Eagerly build every dataset so startup fails fast and the log
	// reports sizes; this is exactly the work the first queries would pay.
	summaries, err := srv.WarmDatasets()
	if err != nil {
		return err
	}
	for _, d := range summaries {
		logger.Info("dataset loaded", "name", d.Name, "nodes", d.Nodes, "edges", d.Edges)
	}
	for _, rec := range srv.Recovery() {
		logger.Info("wal recovered",
			"dataset", rec.Dataset,
			"version", rec.Version,
			"checkpoint_version", rec.CheckpointVersion,
			"replayed_records", rec.ReplayedRecords,
			"skipped_records", rec.SkippedRecords,
			"torn_bytes", rec.TornBytes,
		)
	}
	effWorkers := cfg.Workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.QLogPath != "" {
		logger.Info("query flight recorder on", "path", cfg.QLogPath, "sample", cfg.QLogSample)
	}

	httpSrv := &http.Server{
		Addr:              listen,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if debugAddr != "" {
		// net/http/pprof registers on the default mux; serving it on its
		// own listener keeps profiling endpoints off the query port.
		go func() {
			logger.Info("pprof listening", "addr", debugAddr)
			if err := http.ListenAndServe(debugAddr, nil); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		walMode := "off"
		if cfg.WALDir != "" {
			walMode = cfg.WALSync
		}
		logger.Info("listening",
			"addr", listen,
			"datasets", len(specs),
			"workers", effWorkers,
			"eps_ladder", srv.EpsLadder(),
			"trace_ring", srv.TraceRing(),
			"wal", walMode,
		)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	logger.Info("shutting down", "drain", drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Flush the flight recorder and sync the WALs only after the listener
	// has drained, so the files hold every in-flight request's effect.
	if err := srv.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	logger.Info("drained cleanly")
	return nil
}
