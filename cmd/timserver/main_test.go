package main

import (
	"io"
	"log/slog"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

func TestDatasetFlags(t *testing.T) {
	var d datasetFlags
	if err := d.Set("a=ba:10:2"); err != nil {
		t.Fatal(err)
	}
	if err := d.Set("b=er:10:20"); err != nil {
		t.Fatal(err)
	}
	if got := d.String(); got != "a=ba:10:2,b=er:10:20" {
		t.Fatalf("String() = %q", got)
	}
}

func TestParseLadder(t *testing.T) {
	got, err := parseLadder(" 0.5, 0.1,0.3 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0.5 || got[1] != 0.1 || got[2] != 0.3 {
		t.Fatalf("ladder = %v", got)
	}
	if got, err := parseLadder(""); err != nil || got != nil {
		t.Fatalf("empty = %v, %v", got, err)
	}
	if _, err := parseLadder("0.1,zero.2"); err == nil {
		t.Fatal("bad entry accepted")
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name     string
		datasets []string
		wantSub  string
	}{
		{"no datasets", nil, "at least one -dataset"},
		{"bad spec", []string{"noequals"}, "name=source"},
		{"duplicate", []string{"a=ba:10:2", "a=ba:20:2"}, "duplicate"},
	}
	cfg := server.Config{CacheSize: 8, RRCollections: 8, MaxTheta: 1000, RequestTimeout: time.Second, Workers: 1, Seed: 1}
	for _, c := range cases {
		err := run(":0", c.datasets, cfg, time.Second, discardLogger(), "")
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: err=%v, want substring %q", c.name, err, c.wantSub)
		}
	}
}

func TestRunBadListenAddress(t *testing.T) {
	cfg := server.Config{CacheSize: 8, RRCollections: 8, MaxTheta: 1000, RequestTimeout: time.Second, Workers: 1, Seed: 1}
	err := run("999.999.999.999:bad", []string{"a=ba:10:2"}, cfg, time.Second, discardLogger(), "")
	if err == nil {
		t.Fatal("want listen error")
	}
}

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func TestNewLogger(t *testing.T) {
	for _, lvl := range []string{"debug", "info", "warn", "error", "WARN"} {
		if _, err := newLogger(lvl); err != nil {
			t.Errorf("newLogger(%q): %v", lvl, err)
		}
	}
	if _, err := newLogger("loud"); err == nil {
		t.Fatal("bad level accepted")
	}
}
