package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte("0 1 1.0\n1 2 1.0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWithSeedsArg(t *testing.T) {
	path := writeGraph(t)
	if err := run(path, false, "", "tiny", "keep", "ic", "0", "", 500, 1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithSeedsFile(t *testing.T) {
	path := writeGraph(t)
	seedsPath := filepath.Join(t.TempDir(), "seeds.txt")
	if err := os.WriteFile(seedsPath, []byte("0\n2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, false, "", "tiny", "wc", "lt", "", seedsPath, 500, 1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithProfile(t *testing.T) {
	if err := run("", false, "nethept", "tiny", "wc", "ic", "0,1,2", "", 200, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeGraph(t)
	cases := []struct {
		name string
		err  error
	}{
		{"no graph", run("", false, "", "tiny", "wc", "ic", "0", "", 100, 1, 1)},
		{"bad model", run(path, false, "", "tiny", "wc", "sis", "0", "", 100, 1, 1)},
		{"bad weights", run(path, false, "", "tiny", "cubic", "ic", "0", "", 100, 1, 1)},
		{"no seeds", run(path, false, "", "tiny", "wc", "ic", "", "", 100, 1, 1)},
		{"both seed sources", run(path, false, "", "tiny", "wc", "ic", "0", path, 100, 1, 1)},
		{"seed out of range", run(path, false, "", "tiny", "wc", "ic", "99", "", 100, 1, 1)},
		{"bad seed token", run(path, false, "", "tiny", "wc", "ic", "zero", "", 100, 1, 1)},
		{"missing seeds file", run(path, false, "", "tiny", "wc", "ic", "", filepath.Join(t.TempDir(), "no.txt"), 100, 1, 1)},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseSeeds(t *testing.T) {
	seeds, err := parseSeeds("1, 2,3", "", 10)
	if err != nil || len(seeds) != 3 || seeds[2] != 3 {
		t.Fatalf("parseSeeds: %v %v", seeds, err)
	}
	if _, err := parseSeeds("", "", 10); err == nil {
		t.Fatal("empty seeds accepted")
	}
}
