// Command spreadeval estimates the expected spread E[I(S)] of a given
// seed set by Monte-Carlo simulation — the measurement used for the
// paper's expected-spread figures.
//
// Examples:
//
//	spreadeval -graph network.txt -weights wc -seeds 4,17,92 -samples 100000
//	spreadeval -profile nethept -scale tiny -seeds-file seeds.txt -model lt
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge list file to load")
		undirected = flag.Bool("undirected", false, "treat edge list as undirected")
		profile    = flag.String("profile", "", "generate a dataset profile instead of loading")
		scale      = flag.String("scale", "tiny", "profile scale")
		weights    = flag.String("weights", "wc", "weight scheme: wc|lt-random|keep|uniform:<p>")
		modelName  = flag.String("model", "ic", "diffusion model: ic|lt")
		seedsArg   = flag.String("seeds", "", "comma-separated seed node ids")
		seedsFile  = flag.String("seeds-file", "", "file with one seed node id per line")
		samples    = flag.Int("samples", 10000, "Monte-Carlo cascade count")
		seed       = flag.Uint64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "workers (0 = all cores)")
	)
	flag.Parse()
	if err := run(*graphPath, *undirected, *profile, *scale, *weights,
		*modelName, *seedsArg, *seedsFile, *samples, *seed, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "spreadeval:", err)
		os.Exit(1)
	}
}

func run(graphPath string, undirected bool, profile, scale, weights,
	modelName, seedsArg, seedsFile string, samples int, seed uint64, workers int) error {

	var (
		g   *repro.Graph
		err error
	)
	switch {
	case graphPath != "":
		f, ferr := os.Open(graphPath)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		g, err = repro.LoadEdgeList(f, undirected)
	case profile != "":
		g, err = repro.GenerateDataset(profile, scale, seed)
	default:
		return fmt.Errorf("one of -graph or -profile is required")
	}
	if err != nil {
		return err
	}

	switch {
	case weights == "wc":
		repro.UseWeightedCascade(g)
	case weights == "lt-random":
		repro.UseRandomLTWeights(g, seed)
	case weights == "keep":
	case strings.HasPrefix(weights, "uniform:"):
		var p float64
		if _, serr := fmt.Sscanf(weights, "uniform:%g", &p); serr != nil {
			return fmt.Errorf("bad weight scheme %q", weights)
		}
		if werr := repro.UseUniformIC(g, float32(p)); werr != nil {
			return werr
		}
	default:
		return fmt.Errorf("unknown weight scheme %q", weights)
	}

	var model repro.Model
	switch strings.ToLower(modelName) {
	case "ic":
		model = repro.IC()
	case "lt":
		model = repro.LT()
	default:
		return fmt.Errorf("unknown model %q", modelName)
	}

	seedSet, err := parseSeeds(seedsArg, seedsFile, g.N())
	if err != nil {
		return err
	}
	mean, stderr := repro.EstimateSpreadStderr(g, model, seedSet, repro.SpreadOptions{
		Samples: samples, Workers: workers, Seed: seed,
	})
	fmt.Printf("seeds: %d nodes\nspread: %.3f +- %.3f (%d samples, %s model)\n",
		len(seedSet), mean, stderr, samples, modelName)
	return nil
}

func parseSeeds(arg, file string, n int) ([]uint32, error) {
	var tokens []string
	switch {
	case arg != "" && file != "":
		return nil, fmt.Errorf("-seeds and -seeds-file are mutually exclusive")
	case arg != "":
		tokens = strings.Split(arg, ",")
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		tokens = strings.Fields(string(data))
	default:
		return nil, fmt.Errorf("one of -seeds or -seeds-file is required")
	}
	seeds := make([]uint32, 0, len(tokens))
	for _, tok := range tokens {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.ParseUint(tok, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", tok, err)
		}
		if int(v) >= n {
			return nil, fmt.Errorf("seed %d out of range (n=%d)", v, n)
		}
		seeds = append(seeds, uint32(v))
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no seeds given")
	}
	return seeds, nil
}
