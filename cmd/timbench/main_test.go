package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestQuickBenchRoundTrip: a quick run writes a schema-valid BENCH.json
// whose runs are bit-identical and whose speedup fields are populated.
func TestQuickBenchRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("quick bench still samples tens of thousands of RR sets")
	}
	out := filepath.Join(t.TempDir(), "BENCH.json")
	if err := run(0, 0, "ic", 0, 0, 1, 3, true, false, out); err != nil {
		t.Fatal(err)
	}
	if err := validateFile(out); err != nil {
		t.Fatalf("self-emitted file fails validation: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if !f.BitIdentical {
		t.Fatal("parallel run diverged from Workers=1")
	}
	if len(f.Runs) != 2 || f.Runs[0].Workers != 1 || f.Runs[1].Workers != 3 {
		t.Fatalf("runs: %+v", f.Runs)
	}
	if f.Config.Quick != true || f.Config.Theta != 20_000 {
		t.Fatalf("quick config not applied: %+v", f.Config)
	}
}

// TestCompareFiles: the -against regression check accepts runs within
// tolerance, rejects slow phases, and refuses mismatched instances.
func TestCompareFiles(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, sampleNs, greedyNs, countNs int64, n int) string {
		f := BenchFile{
			Version:      1,
			GeneratedBy:  "timbench",
			Config:       BenchConfig{N: n, M: 10, Model: "ic", Theta: 100, K: 5, Seed: 1, Workers: 1, Cores: 1},
			BitIdentical: true,
			Memory:       BenchMemory{ZeroCopyPeakBytes: 1, MergeBaselinePeakBytes: 2, Reduction: 0.5},
			Runs: []BenchRun{{
				Workers: 1, SampleNs: sampleNs, GreedyNs: greedyNs, CountCoveredNs: countNs,
				SelectNs: greedyNs + countNs, TotalNs: sampleNs + greedyNs + countNs,
				PeakRRBytes: 1, CollectionBytes: 1,
			}},
		}
		data, err := json.Marshal(&f)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	base := mk("base.json", 1000, 500, 300, 100)
	if err := compareFiles(mk("same.json", 1100, 550, 330, 100), base, 0.25); err != nil {
		t.Fatalf("within-tolerance run rejected: %v", err)
	}
	err := compareFiles(mk("slow.json", 2000, 500, 300, 100), base, 0.25)
	if err == nil || !strings.Contains(err.Error(), "sample") {
		t.Fatalf("2x sample regression: %v", err)
	}
	// A single slow phase fails even when total stays inside tolerance.
	err = compareFiles(mk("phase.json", 900, 800, 200, 100), base, 0.25)
	if err == nil || !strings.Contains(err.Error(), "greedy") {
		t.Fatalf("greedy-only regression: %v", err)
	}
	if err := compareFiles(mk("othern.json", 1000, 500, 300, 999), base, 0.25); err == nil {
		t.Fatal("mismatched instances compared")
	}
}

// TestValidateRejects: structurally broken files fail with pointed
// errors.
func TestValidateRejects(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"bad version":    `{"version":2,"generated_by":"timbench","config":{},"runs":[],"speedup":{},"memory":{},"bit_identical":true}`,
		"no runs":        `{"version":1,"generated_by":"timbench","config":{},"runs":[],"speedup":{},"memory":{},"bit_identical":true}`,
		"not identical":  `{"version":1,"generated_by":"timbench","config":{},"runs":[{"workers":1,"sample_ns":1,"greedy_ns":1,"count_covered_ns":1,"select_ns":2,"total_ns":3,"peak_rr_bytes":1,"collection_bytes":1}],"speedup":{},"memory":{"zero_copy_peak_bytes":1,"merge_baseline_peak_bytes":2,"reduction":0.5},"bit_identical":false}`,
		"unknown fields": `{"version":1,"generated_by":"timbench","bogus":1}`,
		"not json":       `hello`,
	}
	i := 0
	for name, content := range cases {
		path := filepath.Join(dir, strings.ReplaceAll(name, " ", "_")+".json")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := validateFile(path); err == nil {
			t.Fatalf("%s: validation passed, want failure", name)
		}
		i++
	}
	if err := validateFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file: validation passed")
	}
}
