// Command timbench is the reproducible performance baseline for the
// query pipeline. It times the two halves of a large-θ query — RR-set
// sampling and node selection (inverted-index build + greedy cover +
// coverage counting) — at Workers=1 and at full parallelism, tracks peak
// RR memory during sampling (zero-copy arena vs the pre-PR merge-based
// layout), verifies that every run is bit-identical, and writes the
// results as machine-readable BENCH.json so CI can archive a perf
// trajectory instead of anecdotes.
//
// Example:
//
//	timbench -n 20000 -m 160000 -theta 500000 -k 50 -out BENCH.json
//	timbench -validate BENCH.json
//
// The -quick mode shrinks the instance for CI smoke runs; the schema is
// identical, so -validate passes on both.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/diffusion"
	"repro/internal/diskrr"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/maxcover"
	"repro/internal/obs"
	"repro/internal/rng"
)

// BenchFile is the BENCH.json schema, version 1. Durations are
// nanoseconds; memory is bytes.
type BenchFile struct {
	Version     int         `json:"version"`
	GeneratedBy string      `json:"generated_by"`
	Config      BenchConfig `json:"config"`
	// Runs holds one entry per measured worker count; Runs[0] is always
	// Workers=1, the speedup denominator.
	Runs []BenchRun `json:"runs"`
	// Speedup is Runs[0] time / best parallel time, per phase.
	Speedup BenchSpeedup `json:"speedup"`
	// Memory contrasts peak heap growth during sampling under the
	// zero-copy layout against the merge-based baseline layout.
	Memory BenchMemory `json:"memory"`
	// OutOfCore times the spill tier's demote (WriteSpill) and promote
	// (ReadSpill) halves over the sampled collection. Optional — older
	// baselines without it stay schema-valid and are simply not compared
	// on this phase.
	OutOfCore *BenchOutOfCore `json:"out_of_core,omitempty"`
	// BitIdentical records that every run produced identical seeds and
	// identical RR arenas; timbench exits non-zero otherwise, so a false
	// here never reaches CI artifacts silently.
	BitIdentical bool `json:"bit_identical"`
}

// BenchOutOfCore is one spill-tier round trip: the collection demoted
// to a spill file and promoted back, with the read-back arena verified
// bit-identical before any number is reported.
type BenchOutOfCore struct {
	Sets        int64 `json:"sets"`
	SpillBytes  int64 `json:"spill_bytes"`
	DemoteNs    int64 `json:"demote_ns"`
	PromoteNs   int64 `json:"promote_ns"`
	RoundTripNs int64 `json:"round_trip_ns"`
}

// BenchConfig echoes the instance parameters for reproducibility.
type BenchConfig struct {
	N       int    `json:"n"`
	M       int    `json:"m"`
	Model   string `json:"model"`
	Theta   int64  `json:"theta"`
	K       int    `json:"k"`
	Seed    uint64 `json:"seed"`
	Workers int    `json:"workers"`
	Quick   bool   `json:"quick"`
	Cores   int    `json:"cores"`
	// Trace records that the timed runs carried a live per-request trace
	// (the -trace flag), so baselines with and without span overhead are
	// never compared unknowingly.
	Trace bool `json:"trace,omitempty"`
}

// BenchRun is one measured configuration.
type BenchRun struct {
	Workers        int   `json:"workers"`
	SampleNs       int64 `json:"sample_ns"`
	GreedyNs       int64 `json:"greedy_ns"`
	CountCoveredNs int64 `json:"count_covered_ns"`
	SelectNs       int64 `json:"select_ns"`
	TotalNs        int64 `json:"total_ns"`
	// PeakRRBytes is the peak heap growth observed while sampling.
	PeakRRBytes int64 `json:"peak_rr_bytes"`
	// CollectionBytes is the settled arena size (RRCollection.MemoryBytes).
	CollectionBytes int64 `json:"collection_bytes"`
}

// BenchSpeedup is parallel speedup (serial time / parallel time).
type BenchSpeedup struct {
	Sample float64 `json:"sample"`
	Select float64 `json:"select"`
	Total  float64 `json:"total"`
}

// BenchMemory is the sampling peak-memory comparison.
type BenchMemory struct {
	ZeroCopyPeakBytes      int64   `json:"zero_copy_peak_bytes"`
	MergeBaselinePeakBytes int64   `json:"merge_baseline_peak_bytes"`
	Reduction              float64 `json:"reduction"`
}

func main() {
	var (
		n        = flag.Int("n", 20_000, "nodes of the synthetic Chung-Lu graph")
		m        = flag.Int("m", 160_000, "edges of the synthetic Chung-Lu graph")
		model    = flag.String("model", "ic", "diffusion model: ic or lt")
		theta    = flag.Int64("theta", 500_000, "RR sets of the node-selection phase (the large-θ query)")
		k        = flag.Int("k", 50, "seed-set size of the greedy cover")
		seed     = flag.Uint64("seed", 1, "seed for graph generation and sampling")
		workers  = flag.Int("workers", 0, "parallel worker count to compare against Workers=1 (0 = all cores)")
		quick    = flag.Bool("quick", false, "shrink the instance for CI smoke runs (schema unchanged)")
		out      = flag.String("out", "BENCH.json", "output path")
		validate = flag.String("validate", "", "validate an existing BENCH.json against the schema and exit")
		trace    = flag.Bool("trace", false, "attach a live trace to each timed run, measuring span-recording overhead")
		against  = flag.String("against", "", "committed baseline BENCH.json to compare the fresh run against")
		tol      = flag.Float64("tolerance", 0.25, "allowed fractional slowdown per phase before -against fails")
	)
	flag.Parse()
	if *validate != "" {
		if err := validateFile(*validate); err != nil {
			fmt.Fprintln(os.Stderr, "timbench: invalid:", err)
			os.Exit(1)
		}
		fmt.Printf("timbench: %s is schema-valid\n", *validate)
		return
	}
	if err := run(*n, *m, *model, *theta, *k, *seed, *workers, *quick, *trace, *out); err != nil {
		fmt.Fprintln(os.Stderr, "timbench:", err)
		os.Exit(1)
	}
	if *against != "" {
		if err := compareFiles(*out, *against, *tol); err != nil {
			fmt.Fprintln(os.Stderr, "timbench: regression:", err)
			os.Exit(1)
		}
		fmt.Printf("timbench: %s within %.0f%% of baseline %s in every phase\n", *out, 100**tol, *against)
	}
}

func run(n, m int, modelName string, theta int64, k int, seed uint64, workers int, quick, trace bool, out string) error {
	if quick {
		n, m, theta, k = 2_000, 12_000, 20_000, 20
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var model diffusion.Model
	switch modelName {
	case "ic":
		model = diffusion.NewIC()
	case "lt":
		model = diffusion.NewLT()
	default:
		return fmt.Errorf("unknown model %q (want ic or lt)", modelName)
	}
	g := gen.ChungLuDirected(n, m, 2.4, 2.1, rng.New(seed))
	if model.Kind() == diffusion.LT {
		graph.AssignRandomNormalizedLTKeyed(g, seed+1)
	} else {
		graph.AssignWeightedCascade(g)
	}

	file := BenchFile{
		Version:     1,
		GeneratedBy: "timbench",
		Config: BenchConfig{
			N: n, M: m, Model: modelName, Theta: theta, K: k,
			Seed: seed, Workers: workers, Quick: quick,
			Cores: runtime.GOMAXPROCS(0), Trace: trace,
		},
		BitIdentical: true,
	}

	counts := []int{1, workers}
	if workers == 1 {
		counts = []int{1}
	}
	var refSeeds []uint32
	var refArena uint64
	for _, w := range counts {
		runRes, seeds, arena := benchOnce(g, model, theta, k, seed, w, trace)
		file.Runs = append(file.Runs, runRes)
		if refSeeds == nil {
			refSeeds, refArena = seeds, arena
			continue
		}
		if arena != refArena || !equalSeeds(seeds, refSeeds) {
			file.BitIdentical = false
		}
	}
	base := file.Runs[0]
	best := file.Runs[len(file.Runs)-1]
	file.Speedup = BenchSpeedup{
		Sample: ratio(base.SampleNs, best.SampleNs),
		Select: ratio(base.SelectNs, best.SelectNs),
		Total:  ratio(base.TotalNs, best.TotalNs),
	}

	// Peak-memory contrast: sample θ sets through the zero-copy path and
	// through the pre-PR merge layout (per-worker private parts
	// concatenated into a fresh arena), both at full parallelism. The
	// baseline draws the same per-index keyed streams, so both runs hold
	// identical output bytes — the arena hashes are cross-checked below
	// and the comparison is workload-for-workload.
	var zeroHash, mergeHash uint64
	zero := peakDuring(func() {
		col := diffusion.SampleCollection(g, model, theta, diffusion.SampleOptions{Workers: workers, Seed: seed + 99})
		zeroHash = arenaHash(col)
	})
	merge := peakDuring(func() {
		col := sampleMergeBaseline(g, model, theta, seed+99, workers)
		mergeHash = arenaHash(col)
	})
	if zeroHash != mergeHash {
		return fmt.Errorf("merge baseline diverged from the zero-copy sampler: the memory comparison would be comparing different workloads")
	}
	file.Memory = BenchMemory{
		ZeroCopyPeakBytes:      zero,
		MergeBaselinePeakBytes: merge,
		Reduction:              1 - float64(zero)/float64(merge),
	}

	ooc, err := benchOutOfCore(g, model, theta, seed, workers)
	if err != nil {
		return err
	}
	file.OutOfCore = ooc

	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("timbench: θ=%d k=%d n=%d: sample ×%.2f, select ×%.2f, total ×%.2f at %d workers; sampling peak %s vs merge baseline %s (-%.0f%%)\n",
		theta, k, n, file.Speedup.Sample, file.Speedup.Select, file.Speedup.Total, workers,
		fmtBytes(zero), fmtBytes(merge), 100*file.Memory.Reduction)
	fmt.Printf("timbench: out-of-core: %s spilled in %.1fms, promoted in %.1fms (%d sets, bit-identical)\n",
		fmtBytes(ooc.SpillBytes), float64(ooc.DemoteNs)/1e6, float64(ooc.PromoteNs)/1e6, ooc.Sets)
	if !file.BitIdentical {
		return fmt.Errorf("parallel runs were not bit-identical to Workers=1 (BENCH.json written with bit_identical=false)")
	}
	return nil
}

// benchOnce measures one worker count end to end and returns the seeds
// and an FNV digest of the RR arena for the bit-identity cross-check.
func benchOnce(g *graph.Graph, model diffusion.Model, theta int64, k int, seed uint64, workers int, trace bool) (BenchRun, []uint32, uint64) {
	res := BenchRun{Workers: workers}

	// With -trace the sampling runs under a live Trace, paying exactly the
	// span-recording cost a traced server request pays; without it the ctx
	// carries no trace and every span call is the nil-receiver no-op.
	ctx := context.Background()
	if trace {
		ctx = obs.WithTrace(ctx, obs.NewTrace(fmt.Sprintf("bench-w%d", workers)))
	}

	var col *diffusion.RRCollection
	res.PeakRRBytes = peakDuring(func() {
		t0 := time.Now()
		col = diffusion.SampleCollection(g, model, theta, diffusion.SampleOptions{Workers: workers, Seed: seed, Ctx: ctx})
		res.SampleNs = time.Since(t0).Nanoseconds()
	})
	res.CollectionBytes = col.MemoryBytes()

	t1 := time.Now()
	cover := maxcover.GreedyWorkers(g.N(), col, k, workers)
	res.GreedyNs = time.Since(t1).Nanoseconds()

	t2 := time.Now()
	covered := maxcover.CountCoveredWorkers(g.N(), col, cover.Seeds, workers)
	res.CountCoveredNs = time.Since(t2).Nanoseconds()
	if covered != cover.Covered {
		panic(fmt.Sprintf("coverage disagrees: greedy %d, recount %d", cover.Covered, covered))
	}
	res.SelectNs = res.GreedyNs + res.CountCoveredNs
	res.TotalNs = res.SampleNs + res.SelectNs
	return res, cover.Seeds, arenaHash(col)
}

// benchOutOfCore times the server's spill tier on this instance's
// collection: demote (serialize + fsync to a spill file) and promote
// (sequential read into a fresh arena). The read-back arena must hash
// identically to the source — a spill format that loses bytes has no
// business reporting a throughput number.
func benchOutOfCore(g *graph.Graph, model diffusion.Model, theta int64, seed uint64, workers int) (*BenchOutOfCore, error) {
	col := diffusion.SampleCollection(g, model, theta, diffusion.SampleOptions{Workers: workers, Seed: seed + 7})
	// The format cross-checks Σwidths against the header's TotalWidth, so
	// spread the collection's total evenly — the bench times bytes moved,
	// the width values themselves don't matter here.
	widths := make([]int64, col.Count())
	if n := int64(len(widths)); n > 0 {
		base, rem := col.TotalWidth/n, col.TotalWidth%n
		for i := range widths {
			widths[i] = base
			if int64(i) < rem {
				widths[i]++
			}
		}
	}
	dir, err := os.MkdirTemp("", "timbench-spill-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := dir + "/rrspill-bench.bin"
	hdr := diskrr.SpillHeader{Version: 1, Seed: seed + 7}

	t0 := time.Now()
	bytes, err := diskrr.WriteSpill(path, hdr, col, widths)
	demoteNs := time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, fmt.Errorf("out-of-core demote: %w", err)
	}
	t1 := time.Now()
	rhdr, back, rwidths, err := diskrr.ReadSpill(path)
	promoteNs := time.Since(t1).Nanoseconds()
	if err != nil {
		return nil, fmt.Errorf("out-of-core promote: %w", err)
	}
	if rhdr != hdr || back.Count() != col.Count() || len(rwidths) != len(widths) ||
		arenaHash(back) != arenaHash(col) {
		return nil, fmt.Errorf("out-of-core round trip not bit-identical")
	}
	return &BenchOutOfCore{
		Sets:        int64(col.Count()),
		SpillBytes:  bytes,
		DemoteNs:    demoteNs,
		PromoteNs:   promoteNs,
		RoundTripNs: demoteNs + promoteNs,
	}, nil
}

// peakDuring runs fn while a background goroutine polls heap usage, and
// returns the peak heap growth over the pre-fn baseline. GC noise makes
// this an approximation, but a faithful one at the multi-hundred-MB
// scale the comparison cares about.
func peakDuring(fn func()) int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	var peak atomic.Int64
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				if grow := int64(m.HeapAlloc) - int64(base); grow > peak.Load() {
					peak.Store(grow)
				}
			}
		}
	}()
	fn()
	var end runtime.MemStats
	runtime.ReadMemStats(&end)
	if grow := int64(end.HeapAlloc) - int64(base); grow > peak.Load() {
		peak.Store(grow)
	}
	close(done)
	if p := peak.Load(); p > 0 {
		return p
	}
	return 0
}

// sampleMergeBaseline reproduces the pre-zero-copy memory layout: each
// worker samples its contiguous index range [lo, hi) of the *same*
// per-index keyed streams SampleCollection draws (so the merged output
// is bit-identical to the zero-copy run) into a private collection, and
// the parts are then concatenated into a freshly allocated arena — the
// parts and the merged copy are transiently live together, which is
// exactly the 2× peak the zero-copy path removes.
func sampleMergeBaseline(g *graph.Graph, model diffusion.Model, count int64, seed uint64, workers int) *diffusion.RRCollection {
	if workers < 1 {
		workers = 1
	}
	parts := make([]*diffusion.RRCollection, workers)
	done := make(chan int, workers)
	base := rng.New(seed)
	lo := int64(0)
	for w := 0; w < workers; w++ {
		quota := count / int64(workers)
		if int64(w) < count%int64(workers) {
			quota++
		}
		hi := lo + quota
		go func(w int, lo, hi int64) {
			sampler := diffusion.NewRRSamplerConfig(g, model, diffusion.SampleConfig{})
			col := &diffusion.RRCollection{Off: make([]int64, 1, hi-lo+1)}
			var stream rng.Rand
			var buf []uint32
			for i := lo; i < hi; i++ {
				base.SplitInto(uint64(i), &stream)
				var width int64
				buf, width = sampler.Sample(&stream, buf[:0])
				col.Append(buf, width)
			}
			parts[w] = col
			done <- w
		}(w, lo, hi)
		lo = hi
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	out := &diffusion.RRCollection{}
	var flatLen, offLen int64
	for _, p := range parts {
		flatLen += int64(len(p.Flat))
		offLen += int64(len(p.Off)) - 1
	}
	out.Flat = make([]uint32, 0, flatLen)
	out.Off = make([]int64, 1, offLen+1)
	for _, p := range parts {
		out.Merge(p)
	}
	return out
}

// arenaHash is an FNV-1a digest of a collection's flat arena.
func arenaHash(col *diffusion.RRCollection) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range col.Flat {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

func equalSeeds(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func ratio(base, v int64) float64 {
	if v <= 0 {
		return 0
	}
	return float64(base) / float64(v)
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// validateFile checks a BENCH.json against the schema: required fields
// present and plausible. CI runs it on the artifact it uploads.
func validateFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f BenchFile
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("schema mismatch: %w", err)
	}
	if f.Version != 1 {
		return fmt.Errorf("version = %d, want 1", f.Version)
	}
	if f.GeneratedBy != "timbench" {
		return fmt.Errorf("generated_by = %q", f.GeneratedBy)
	}
	if len(f.Runs) == 0 {
		return fmt.Errorf("no runs")
	}
	if f.Runs[0].Workers != 1 {
		return fmt.Errorf("runs[0].workers = %d, want the Workers=1 baseline first", f.Runs[0].Workers)
	}
	for i, r := range f.Runs {
		if r.SampleNs <= 0 || r.SelectNs <= 0 || r.TotalNs <= 0 {
			return fmt.Errorf("runs[%d]: non-positive timings: %+v", i, r)
		}
		if r.TotalNs != r.SampleNs+r.SelectNs || r.SelectNs != r.GreedyNs+r.CountCoveredNs {
			return fmt.Errorf("runs[%d]: phase sums inconsistent: %+v", i, r)
		}
		if r.CollectionBytes <= 0 {
			return fmt.Errorf("runs[%d]: missing collection bytes", i)
		}
	}
	if len(f.Runs) > 1 && (f.Speedup.Total <= 0 || f.Speedup.Select <= 0 || f.Speedup.Sample <= 0) {
		return fmt.Errorf("missing speedups: %+v", f.Speedup)
	}
	if f.Memory.ZeroCopyPeakBytes <= 0 || f.Memory.MergeBaselinePeakBytes <= 0 {
		return fmt.Errorf("missing memory comparison: %+v", f.Memory)
	}
	if o := f.OutOfCore; o != nil {
		if o.Sets <= 0 || o.SpillBytes <= 0 || o.DemoteNs <= 0 || o.PromoteNs <= 0 {
			return fmt.Errorf("out_of_core has non-positive figures: %+v", *o)
		}
		if o.RoundTripNs != o.DemoteNs+o.PromoteNs {
			return fmt.Errorf("out_of_core round trip %d != demote %d + promote %d", o.RoundTripNs, o.DemoteNs, o.PromoteNs)
		}
	}
	if !f.BitIdentical {
		return fmt.Errorf("bit_identical = false")
	}
	return nil
}

// compareFiles fails when the fresh run regressed past tolerance in any
// phase relative to the committed baseline. Only the Workers=1 runs are
// compared — parallel timings swing with CI machine load, serial phase
// times are the stable signal — and only when the instance configs
// match, so a deliberate -quick baseline is never compared against a
// full-size run.
func compareFiles(freshPath, basePath string, tolerance float64) error {
	load := func(path string) (*BenchFile, error) {
		if err := validateFile(path); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var f BenchFile
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, err
		}
		return &f, nil
	}
	fresh, err := load(freshPath)
	if err != nil {
		return err
	}
	base, err := load(basePath)
	if err != nil {
		return err
	}
	fc, bc := fresh.Config, base.Config
	if fc.N != bc.N || fc.M != bc.M || fc.Theta != bc.Theta || fc.K != bc.K ||
		fc.Model != bc.Model || fc.Seed != bc.Seed || fc.Quick != bc.Quick {
		return fmt.Errorf("instance configs differ (fresh %+v vs baseline %+v): not comparable", fc, bc)
	}
	fr, br := fresh.Runs[0], base.Runs[0]
	phases := []struct {
		name        string
		fresh, base int64
	}{
		{"sample", fr.SampleNs, br.SampleNs},
		{"greedy", fr.GreedyNs, br.GreedyNs},
		{"count_covered", fr.CountCoveredNs, br.CountCoveredNs},
		{"total", fr.TotalNs, br.TotalNs},
	}
	var failures []string
	check := func(name string, freshNs, baseNs int64, tol float64) {
		limit := float64(baseNs) * (1 + tol)
		if float64(freshNs) > limit {
			failures = append(failures, fmt.Sprintf("%s %.1fms vs baseline %.1fms (+%.0f%% > %.0f%% allowed)",
				name, float64(freshNs)/1e6, float64(baseNs)/1e6,
				100*(float64(freshNs)/float64(baseNs)-1), 100*tol))
		}
	}
	for _, p := range phases {
		check(p.name, p.fresh, p.base, tolerance)
	}
	// The out-of-core phase is compared only when both files carry it
	// (pre-spill baselines don't), at double tolerance: disk latency on
	// shared CI runners swings far more than CPU-bound phase times.
	if fo, bo := fresh.OutOfCore, base.OutOfCore; fo != nil && bo != nil {
		check("out_of_core.demote", fo.DemoteNs, bo.DemoteNs, 2*tolerance)
		check("out_of_core.promote", fo.PromoteNs, bo.PromoteNs, 2*tolerance)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%s", strings.Join(failures, "; "))
	}
	return nil
}
