package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeTempEdgeList(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	content := "# demo\n0 1\n1 2\n2 3\n3 0\n0 2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// opts returns a baseline cliOptions the way flag defaults would.
func opts(mutate func(*cliOptions)) cliOptions {
	o := cliOptions{
		scale: "tiny", modelName: "ic", edgeScheme: "wc", algo: "tim+",
		k: 2, shards: 2, eps: 0.3, ell: 1, seed: 1, workers: 1,
		celfR: 50, costDefault: 1,
	}
	if mutate != nil {
		mutate(&o)
	}
	return o
}

func TestRunWithFileAllAlgorithms(t *testing.T) {
	path := writeTempEdgeList(t)
	algos := []string{"tim+", "tim", "dist", "ris", "celf++", "celf", "greedy", "irie", "degree", "degreediscount", "pagerank", "random"}
	for _, algo := range algos {
		err := run(opts(func(o *cliOptions) {
			o.graphPath = path
			o.algo = algo
			o.evalN = 100
			o.risCap = 100_000
		}))
		if err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
}

func TestRunSimpathLT(t *testing.T) {
	path := writeTempEdgeList(t)
	err := run(opts(func(o *cliOptions) {
		o.graphPath = path
		o.modelName = "lt"
		o.edgeScheme = "lt-random"
		o.algo = "simpath"
		o.evalN = 100
	}))
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithProfile(t *testing.T) {
	err := run(opts(func(o *cliOptions) {
		o.profile = "nethept"
		o.algo = "degree"
		o.k = 5
	}))
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTempEdgeList(t)
	cases := []struct {
		name string
		err  error
	}{
		{"both graph and profile", run(opts(func(o *cliOptions) { o.graphPath = path; o.profile = "nethept" }))},
		{"neither graph nor profile", run(opts(nil))},
		{"unknown model", run(opts(func(o *cliOptions) { o.graphPath = path; o.modelName = "sir" }))},
		{"unknown edge weights", run(opts(func(o *cliOptions) { o.graphPath = path; o.edgeScheme = "quadratic" }))},
		{"unknown algorithm", run(opts(func(o *cliOptions) { o.graphPath = path; o.algo = "simulated-annealing" }))},
		{"k too large", run(opts(func(o *cliOptions) { o.graphPath = path; o.k = 999 }))},
		{"missing file", run(opts(func(o *cliOptions) { o.graphPath = filepath.Join(t.TempDir(), "nope.txt") }))},
		{"bad uniform weight", run(opts(func(o *cliOptions) { o.graphPath = path; o.edgeScheme = "uniform:abc" }))},
		{"constraints on non-tim algo", run(opts(func(o *cliOptions) { o.graphPath = path; o.algo = "degree"; o.maxHops = 2 }))},
		{"bad weights entry", run(opts(func(o *cliOptions) { o.graphPath = path; o.weightsSpec = "1=3" }))},
		{"weights node out of range", run(opts(func(o *cliOptions) { o.graphPath = path; o.weightsSpec = "99:1" }))},
		{"bad exclude id", run(opts(func(o *cliOptions) { o.graphPath = path; o.excludeSpec = "1,x" }))},
		{"costs without budget", run(opts(func(o *cliOptions) { o.graphPath = path; o.costsSpec = "0:2" }))},
		{"force equals exclude", run(opts(func(o *cliOptions) { o.graphPath = path; o.forceSpec = "1"; o.excludeSpec = "1" }))},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRunUniformWeightsAndEval(t *testing.T) {
	path := writeTempEdgeList(t)
	err := run(opts(func(o *cliOptions) {
		o.graphPath = path
		o.undirected = true
		o.edgeScheme = "uniform:0.2"
		o.k = 1
		o.evalN = 500
	}))
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunConstrained(t *testing.T) {
	path := writeTempEdgeList(t)
	err := run(opts(func(o *cliOptions) {
		o.graphPath = path
		o.weightsSpec = "0:3,2:1"
		o.weightDefault = 0.5
		o.costsSpec = "1:2"
		o.budget = 3
		o.forceSpec = "3"
		o.excludeSpec = "1"
		o.maxHops = 2
		o.evalN = 200
	}))
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseNodeValuesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.txt")
	if err := os.WriteFile(path, []byte("# audience\n0 2.5\n3 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dense, err := parseNodeValues("@"+path, 0.25, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2.5, 0.25, 0.25, 1}
	for i := range want {
		if dense[i] != want[i] {
			t.Fatalf("dense = %v, want %v", dense, want)
		}
	}
	if _, err := parseNodeValues("@"+filepath.Join(t.TempDir(), "gone"), 0, 4); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestJoinSeeds(t *testing.T) {
	if got := joinSeeds([]uint32{1, 2, 3}); got != "1,2,3" {
		t.Fatalf("joinSeeds=%q", got)
	}
	if got := joinSeeds(nil); got != "" {
		t.Fatalf("joinSeeds(nil)=%q", got)
	}
}

func TestRunJSONMode(t *testing.T) {
	// Capture stdout to validate the JSON document shape.
	path := writeTempEdgeList(t)
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(opts(func(o *cliOptions) {
		o.graphPath = path
		o.evalN = 200
		o.jsonOut = true
		o.weightsSpec = "0:2,1:2"
		o.weightDefault = 1
	}))
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	var buf [1 << 16]byte
	n, _ := r.Read(buf[:])
	var out jsonOutput
	if err := json.Unmarshal(buf[:n], &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf[:n])
	}
	if out.Algorithm != "tim+" || out.K != 2 || len(out.Seeds) != 2 {
		t.Fatalf("json output: %+v", out)
	}
	if out.Theta == nil || out.KptStar == nil || out.Spread == nil {
		t.Fatalf("missing diagnostics: %+v", out)
	}
	if out.AudienceMass == nil || *out.AudienceMass != 6 {
		t.Fatalf("audience mass: %+v", out.AudienceMass)
	}
}
