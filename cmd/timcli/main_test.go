package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeTempEdgeList(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	content := "# demo\n0 1\n1 2\n2 3\n3 0\n0 2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWithFileAllAlgorithms(t *testing.T) {
	path := writeTempEdgeList(t)
	algos := []string{"tim+", "tim", "dist", "ris", "celf++", "celf", "greedy", "irie", "degree", "degreediscount", "pagerank", "random"}
	for _, algo := range algos {
		err := run(path, false, false, "", "tiny", "ic", "wc", algo,
			2, 2, 0.3, 1, 1, 1, 100, 50, 100_000, false)
		if err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
}

func TestRunSimpathLT(t *testing.T) {
	path := writeTempEdgeList(t)
	err := run(path, false, false, "", "tiny", "lt", "lt-random", "simpath",
		2, 2, 0.3, 1, 1, 1, 100, 50, 0, false)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithProfile(t *testing.T) {
	err := run("", false, false, "nethept", "tiny", "ic", "wc", "degree",
		5, 2, 0.3, 1, 1, 1, 0, 50, 0, false)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTempEdgeList(t)
	cases := []struct {
		name string
		err  error
	}{
		{"both graph and profile", run(path, false, false, "nethept", "tiny", "ic", "wc", "tim+", 2, 2, 0.3, 1, 1, 1, 0, 50, 0, false)},
		{"neither graph nor profile", run("", false, false, "", "tiny", "ic", "wc", "tim+", 2, 2, 0.3, 1, 1, 1, 0, 50, 0, false)},
		{"unknown model", run(path, false, false, "", "tiny", "sir", "wc", "tim+", 2, 2, 0.3, 1, 1, 1, 0, 50, 0, false)},
		{"unknown weights", run(path, false, false, "", "tiny", "ic", "quadratic", "tim+", 2, 2, 0.3, 1, 1, 1, 0, 50, 0, false)},
		{"unknown algorithm", run(path, false, false, "", "tiny", "ic", "wc", "simulated-annealing", 2, 2, 0.3, 1, 1, 1, 0, 50, 0, false)},
		{"k too large", run(path, false, false, "", "tiny", "ic", "wc", "tim+", 999, 2, 0.3, 1, 1, 1, 0, 50, 0, false)},
		{"missing file", run(filepath.Join(t.TempDir(), "nope.txt"), false, false, "", "tiny", "ic", "wc", "tim+", 2, 2, 0.3, 1, 1, 1, 0, 50, 0, false)},
		{"bad uniform weight", run(path, false, false, "", "tiny", "ic", "uniform:abc", "tim+", 2, 2, 0.3, 1, 1, 1, 0, 50, 0, false)},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRunUniformWeightsAndEval(t *testing.T) {
	path := writeTempEdgeList(t)
	err := run(path, false, true, "", "tiny", "ic", "uniform:0.2", "tim+",
		1, 2, 0.3, 1, 1, 1, 500, 50, 0, false)
	if err != nil {
		t.Fatal(err)
	}
}

func TestJoinSeeds(t *testing.T) {
	if got := joinSeeds([]uint32{1, 2, 3}); got != "1,2,3" {
		t.Fatalf("joinSeeds=%q", got)
	}
	if got := joinSeeds(nil); got != "" {
		t.Fatalf("joinSeeds(nil)=%q", got)
	}
}

func TestRunJSONMode(t *testing.T) {
	// Capture stdout to validate the JSON document shape.
	path := writeTempEdgeList(t)
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(path, false, false, "", "tiny", "ic", "wc", "tim+",
		2, 2, 0.3, 1, 1, 1, 200, 50, 0, true)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	var buf [1 << 16]byte
	n, _ := r.Read(buf[:])
	var out jsonOutput
	if err := json.Unmarshal(buf[:n], &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf[:n])
	}
	if out.Algorithm != "tim+" || out.K != 2 || len(out.Seeds) != 2 {
		t.Fatalf("json output: %+v", out)
	}
	if out.Theta == nil || out.KptStar == nil || out.Spread == nil {
		t.Fatalf("missing diagnostics: %+v", out)
	}
}
