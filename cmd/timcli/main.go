// Command timcli runs influence maximization on a graph from the command
// line: load (or synthesize) a network, pick a diffusion model and an
// algorithm, and print the selected seeds with diagnostics.
//
// Examples:
//
//	timcli -graph network.txt -k 50 -algo tim+ -model ic -edge-weights wc
//	timcli -profile epinions -scale tiny -k 20 -algo irie -eval 10000
//	timcli -profile nethept -scale small -k 10 -model lt -algo simpath
//
// Constrained queries (tim/tim+ only): target an audience, cap the
// budget, pin or ban seeds, bound the diffusion deadline:
//
//	timcli -profile nethept -scale tiny -k 10 \
//	    -weights 3:5,17:2 -weight-default 0.1 \
//	    -costs @costs.txt -budget 25 \
//	    -force 3 -exclude 9,12 -max-hops 4 -eval 10000
//
// Node-valued flags (-weights, -costs) take either an inline
// "node:value,node:value" list or "@path" to a file of "node value"
// lines; unlisted nodes get -weight-default (default 0) respectively
// -cost-default (default 1).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
)

// jsonOutput is the machine-readable result emitted by -json.
type jsonOutput struct {
	Algorithm string   `json:"algorithm"`
	Model     string   `json:"model"`
	K         int      `json:"k"`
	Nodes     int      `json:"nodes"`
	Edges     int      `json:"edges"`
	Seeds     []uint32 `json:"seeds"`
	// Spread and SpreadStderr are present only when -eval > 0; for
	// constrained runs they measure the weighted, deadline-bounded spread.
	Spread       *float64 `json:"spread,omitempty"`
	SpreadStderr *float64 `json:"spread_stderr,omitempty"`
	// TIM diagnostics, present for tim/tim+ runs.
	KptStar *float64 `json:"kpt_star,omitempty"`
	KptPlus *float64 `json:"kpt_plus,omitempty"`
	Theta   *int64   `json:"theta,omitempty"`
	// Constrained-query diagnostics.
	AudienceMass *float64 `json:"audience_mass,omitempty"`
	ForcedSeeds  int      `json:"forced_seeds,omitempty"`
	SeedCost     *float64 `json:"seed_cost,omitempty"`
}

// cliOptions carries every flag; main fills it, run consumes it.
type cliOptions struct {
	graphPath  string
	binary     bool
	undirected bool
	profile    string
	scale      string
	modelName  string
	edgeScheme string
	algo       string
	k          int
	shards     int
	eps        float64
	ell        float64
	seed       uint64
	workers    int
	evalN      int
	celfR      int
	risCap     int64
	jsonOut    bool

	// Constraint flags (tim/tim+ only).
	weightsSpec   string
	weightDefault float64
	costsSpec     string
	costDefault   float64
	budget        float64
	forceSpec     string
	excludeSpec   string
	maxHops       int
}

func main() {
	var o cliOptions
	flag.StringVar(&o.graphPath, "graph", "", "edge list file to load (whitespace separated, '#' comments)")
	flag.BoolVar(&o.binary, "binary", false, "graph file is in TIMG binary format")
	flag.BoolVar(&o.undirected, "undirected", false, "treat edge list lines as undirected")
	flag.StringVar(&o.profile, "profile", "", "generate a synthetic dataset profile instead of loading (nethept|epinions|dblp|livejournal|twitter)")
	flag.StringVar(&o.scale, "scale", "tiny", "profile scale: tiny|small|full")
	flag.StringVar(&o.modelName, "model", "ic", "diffusion model: ic|lt")
	flag.StringVar(&o.edgeScheme, "edge-weights", "wc", "edge weight scheme: wc (weighted cascade) | uniform:<p> | trivalency | lt-random | lt-uniform | keep")
	flag.StringVar(&o.algo, "algo", "tim+", "algorithm: tim+|tim|dist|ris|celf++|celf|greedy|irie|simpath|degree|degreediscount|pagerank|random")
	flag.IntVar(&o.k, "k", 50, "seed set size")
	flag.IntVar(&o.shards, "shards", 4, "simulated machines for -algo dist")
	flag.Float64Var(&o.eps, "eps", 0.1, "approximation slack epsilon")
	flag.Float64Var(&o.ell, "ell", 1, "failure exponent ell (success prob 1-n^-ell)")
	flag.Uint64Var(&o.seed, "seed", 1, "random seed")
	flag.IntVar(&o.workers, "workers", 0, "parallelism for sampling and selection (0 = all cores; results identical for every value)")
	flag.IntVar(&o.evalN, "eval", 0, "if > 0, Monte-Carlo samples for evaluating the selected seeds")
	flag.IntVar(&o.celfR, "celf-r", 10000, "Monte-Carlo samples per estimate for greedy variants")
	flag.Int64Var(&o.risCap, "ris-cap", 0, "optional cost cap for RIS (0 = faithful tau)")
	flag.BoolVar(&o.jsonOut, "json", false, "emit a single JSON object instead of text")

	flag.StringVar(&o.weightsSpec, "weights", "", "audience node weights: 'node:w,node:w' or '@file' of 'node w' lines (tim/tim+ only)")
	flag.Float64Var(&o.weightDefault, "weight-default", 0, "audience weight of nodes absent from -weights")
	flag.StringVar(&o.costsSpec, "costs", "", "seeding costs: 'node:c,node:c' or '@file' of 'node c' lines (needs -budget)")
	flag.Float64Var(&o.costDefault, "cost-default", 1, "seeding cost of nodes absent from -costs")
	flag.Float64Var(&o.budget, "budget", 0, "seeding budget B: total cost of picked seeds stays <= B")
	flag.StringVar(&o.forceSpec, "force", "", "comma-separated warm-start seeds (always included, consume neither k nor budget)")
	flag.StringVar(&o.excludeSpec, "exclude", "", "comma-separated node ids that must not be picked")
	flag.IntVar(&o.maxHops, "max-hops", 0, "diffusion deadline in propagation rounds (0 = unlimited)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "timcli:", err)
		os.Exit(1)
	}
}

func run(o cliOptions) error {
	g, err := loadGraph(o.graphPath, o.binary, o.undirected, o.profile, o.scale, o.seed)
	if err != nil {
		return err
	}
	st := repro.Stats(g)
	if !o.jsonOut {
		fmt.Printf("graph: n=%d m=%d avg_degree=%.2f\n", st.Nodes, st.Edges, st.AverageDegree)
	}

	if err := applyWeights(g, o.edgeScheme, o.seed); err != nil {
		return err
	}
	model, err := pickModel(o.modelName)
	if err != nil {
		return err
	}
	spec, err := buildSpec(o, st.Nodes)
	if err != nil {
		return err
	}

	seeds, timRes, err := selectSeeds(g, model, spec, o)
	if err != nil {
		return err
	}
	if !o.jsonOut {
		fmt.Printf("algorithm: %s\nseeds: %s\n", o.algo, joinSeeds(seeds))
	}

	var mean, stderr float64
	if o.evalN > 0 {
		var audience []float64
		maxHops := 0
		if spec != nil {
			audience = spec.Weights
			maxHops = spec.MaxHops
		}
		mean, stderr = repro.EstimateSpreadConstrained(g, model, seeds, audience, maxHops, repro.SpreadOptions{
			Samples: o.evalN, Workers: o.workers, Seed: o.seed + 1,
		})
		if !o.jsonOut {
			kind := "spread"
			if spec != nil && (audience != nil || maxHops > 0) {
				kind = "constrained spread"
			}
			fmt.Printf("%s: %.2f +- %.2f (%d Monte-Carlo samples)\n", kind, mean, stderr, o.evalN)
		}
	}
	if o.jsonOut {
		out := jsonOutput{
			Algorithm: o.algo,
			Model:     strings.ToLower(o.modelName),
			K:         o.k,
			Nodes:     st.Nodes,
			Edges:     st.Edges,
			Seeds:     seeds,
		}
		if o.evalN > 0 {
			out.Spread = &mean
			out.SpreadStderr = &stderr
		}
		if timRes != nil {
			out.KptStar = &timRes.KptStar
			out.KptPlus = &timRes.KptPlus
			out.Theta = &timRes.Theta
			out.ForcedSeeds = timRes.ForcedSeeds
			if spec != nil && spec.Weights != nil {
				out.AudienceMass = &timRes.Mass
			}
			if timRes.SeedCost > 0 {
				out.SeedCost = &timRes.SeedCost
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	return nil
}

// buildSpec lowers the constraint flags into a QuerySpec (nil when no
// constraint flag was given). Constraints need the constrained TIM path,
// so any other algorithm rejects them.
func buildSpec(o cliOptions, n int) (*repro.QuerySpec, error) {
	spec := &repro.QuerySpec{Budget: o.budget, MaxHops: o.maxHops}
	var err error
	if o.weightsSpec != "" {
		if spec.Weights, err = parseNodeValues(o.weightsSpec, o.weightDefault, n); err != nil {
			return nil, fmt.Errorf("-weights: %w", err)
		}
	}
	if o.costsSpec != "" {
		if spec.Costs, err = parseNodeValues(o.costsSpec, o.costDefault, n); err != nil {
			return nil, fmt.Errorf("-costs: %w", err)
		}
	}
	if spec.Force, err = parseNodeList(o.forceSpec); err != nil {
		return nil, fmt.Errorf("-force: %w", err)
	}
	if spec.Exclude, err = parseNodeList(o.excludeSpec); err != nil {
		return nil, fmt.Errorf("-exclude: %w", err)
	}
	if spec.Zero() {
		return nil, nil
	}
	switch strings.ToLower(o.algo) {
	case "tim+", "timplus", "tim":
	default:
		return nil, fmt.Errorf("constraint flags need -algo tim+ or tim, not %q", o.algo)
	}
	return spec, nil
}

// parseNodeValues reads "node:value,node:value" or "@path" (lines of
// "node value", '#' comments) into a dense length-n vector defaulted to
// def.
func parseNodeValues(spec string, def float64, n int) ([]float64, error) {
	dense := make([]float64, n)
	for i := range dense {
		dense[i] = def
	}
	set := func(idStr, valStr string) error {
		id, err := strconv.ParseUint(idStr, 10, 32)
		if err != nil {
			return fmt.Errorf("node id %q: %w", idStr, err)
		}
		if id >= uint64(n) {
			return fmt.Errorf("node %d outside [0, %d)", id, n)
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("value %q: %w", valStr, err)
		}
		dense[id] = v
		return nil
	}
	if path, ok := strings.CutPrefix(spec, "@"); ok {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := strings.TrimSpace(sc.Text())
			if text == "" || strings.HasPrefix(text, "#") {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) != 2 {
				return nil, fmt.Errorf("%s:%d: want 'node value', got %q", path, line, text)
			}
			if err := set(fields[0], fields[1]); err != nil {
				return nil, fmt.Errorf("%s:%d: %w", path, line, err)
			}
		}
		return dense, sc.Err()
	}
	for _, pair := range strings.Split(spec, ",") {
		id, val, ok := strings.Cut(strings.TrimSpace(pair), ":")
		if !ok {
			return nil, fmt.Errorf("entry %q is not node:value", pair)
		}
		if err := set(id, val); err != nil {
			return nil, err
		}
	}
	return dense, nil
}

// parseNodeList reads a comma-separated node-id list ("" = none).
func parseNodeList(spec string) ([]uint32, error) {
	if spec == "" {
		return nil, nil
	}
	var out []uint32
	for _, part := range strings.Split(spec, ",") {
		id, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("node id %q: %w", part, err)
		}
		out = append(out, uint32(id))
	}
	return out, nil
}

func loadGraph(path string, binary, undirected bool, profile, scale string, seed uint64) (*repro.Graph, error) {
	switch {
	case path != "" && profile != "":
		return nil, fmt.Errorf("-graph and -profile are mutually exclusive")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if binary {
			return repro.LoadBinary(f)
		}
		return repro.LoadEdgeList(f, undirected)
	case profile != "":
		return repro.GenerateDataset(profile, scale, seed)
	default:
		return nil, fmt.Errorf("one of -graph or -profile is required")
	}
}

func applyWeights(g *repro.Graph, scheme string, seed uint64) error {
	switch {
	case scheme == "wc":
		repro.UseWeightedCascade(g)
	case scheme == "trivalency":
		repro.UseTrivalency(g, seed)
	case scheme == "lt-random":
		repro.UseRandomLTWeights(g, seed)
	case scheme == "lt-uniform":
		repro.UseUniformLTWeights(g)
	case scheme == "keep":
		// Use the weights carried by the input file.
	case strings.HasPrefix(scheme, "uniform:"):
		var p float64
		if _, err := fmt.Sscanf(scheme, "uniform:%g", &p); err != nil {
			return fmt.Errorf("bad uniform weight %q: %w", scheme, err)
		}
		return repro.UseUniformIC(g, float32(p))
	default:
		return fmt.Errorf("unknown edge weight scheme %q", scheme)
	}
	return nil
}

func pickModel(name string) (repro.Model, error) {
	switch strings.ToLower(name) {
	case "ic":
		return repro.IC(), nil
	case "lt":
		return repro.LT(), nil
	}
	return repro.Model{}, fmt.Errorf("unknown model %q (want ic or lt)", name)
}

func selectSeeds(g *repro.Graph, model repro.Model, spec *repro.QuerySpec, o cliOptions) ([]uint32, *repro.Result, error) {
	quiet := o.jsonOut
	switch strings.ToLower(o.algo) {
	case "dist", "dist+", "tim+dist":
		res, err := repro.MaximizeDistributed(g, model, repro.DistOptions{
			K: o.k, Shards: o.shards, Epsilon: o.eps, Ell: o.ell, Seed: o.seed,
		})
		if err != nil {
			return nil, nil, err
		}
		if !quiet {
			var maxShard int64
			for _, b := range res.ShardMemoryBytes {
				if b > maxShard {
					maxShard = b
				}
			}
			fmt.Printf("dist: machines=%d kpt*=%.1f kpt+=%.1f theta=%d spread_est=%.1f\n",
				res.Shards, res.KptStar, res.KptPlus, res.Theta, res.SpreadEstimate)
			fmt.Printf("dist: max_shard_graph=%.2fMB net: %d msgs %.1fMB (%d expand round trips)\n",
				float64(maxShard)/(1<<20), res.Net.Messages,
				float64(res.Net.Bytes)/(1<<20), res.Net.ExpandRequests)
		}
		return res.Seeds, nil, nil
	case "tim+", "timplus", "tim":
		variant := repro.TIMPlus
		if strings.ToLower(o.algo) == "tim" {
			variant = repro.TIM
		}
		res, err := repro.Maximize(g, model, repro.Options{
			K: o.k, Epsilon: o.eps, Ell: o.ell, Variant: variant,
			Workers: o.workers, Seed: o.seed, Query: spec,
		})
		if err != nil {
			return nil, nil, err
		}
		if !quiet {
			printTimDiagnostics(res, spec)
		}
		return res.Seeds, res, nil
	case "ris":
		res, err := repro.RISSelect(g, model, repro.RISOptions{
			K: o.k, Epsilon: o.eps, Ell: o.ell, CostCap: o.risCap,
			Workers: o.workers, Seed: o.seed,
		})
		if err != nil {
			return nil, nil, err
		}
		if !quiet {
			fmt.Printf("ris: tau=%d cost=%d rr_sets=%d capped=%v\n", res.Tau, res.Cost, res.RRSets, res.Capped)
		}
		return res.Seeds, nil, nil
	case "celf++", "celf", "greedy":
		strategy := repro.StrategyCELFPlusPlus
		switch strings.ToLower(o.algo) {
		case "celf":
			strategy = repro.StrategyCELF
		case "greedy":
			strategy = repro.StrategyPlain
		}
		res, err := repro.GreedySelect(g, model, o.k, repro.GreedyOptions{
			R: o.celfR, Workers: o.workers, Seed: o.seed, Strategy: strategy,
		})
		if err != nil {
			return nil, nil, err
		}
		if !quiet {
			fmt.Printf("greedy: evaluations=%d\n", res.Evaluations)
		}
		return res.Seeds, nil, nil
	case "irie":
		res, err := repro.IRIESelect(g, repro.IRIEOptions{K: o.k})
		if err != nil {
			return nil, nil, err
		}
		return res.Seeds, nil, nil
	case "simpath":
		res, err := repro.SimpathSelect(g, repro.SimpathOptions{K: o.k})
		if err != nil {
			return nil, nil, err
		}
		if res.Truncated && !quiet {
			fmt.Println("simpath: warning: enumeration truncated by MaxSteps")
		}
		return res.Seeds, nil, nil
	case "degree":
		seeds, err := repro.DegreeSelect(g, o.k)
		return seeds, nil, err
	case "degreediscount":
		seeds, err := repro.DegreeDiscountSelect(g, o.k, 0.01)
		return seeds, nil, err
	case "pagerank":
		seeds, err := repro.PageRankSelect(g, o.k)
		return seeds, nil, err
	case "random":
		seeds, err := repro.RandomSelect(g, o.k, o.seed)
		return seeds, nil, err
	}
	return nil, nil, fmt.Errorf("unknown algorithm %q", o.algo)
}

func printTimDiagnostics(res *repro.Result, spec *repro.QuerySpec) {
	fmt.Printf("tim: kpt*=%.1f kpt+=%.1f theta=%d spread_est=%.1f rr_mem=%.1fMB\n",
		res.KptStar, res.KptPlus, res.Theta, res.SpreadEstimate,
		float64(res.MemoryBytes)/(1<<20))
	if spec != nil {
		fmt.Printf("tim: constrained: forced=%d seed_cost=%.2f audience_mass=%.1f max_hops=%d\n",
			res.ForcedSeeds, res.SeedCost, res.Mass, spec.MaxHops)
	}
	fmt.Printf("tim: phase times: param_est=%v refine=%v node_sel=%v total=%v\n",
		res.Timings.KptEstimation, res.Timings.Refinement,
		res.Timings.NodeSelection, res.Timings.Total)
}

func joinSeeds(seeds []uint32) string {
	parts := make([]string, len(seeds))
	for i, s := range seeds {
		parts[i] = fmt.Sprint(s)
	}
	return strings.Join(parts, ",")
}
