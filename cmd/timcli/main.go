// Command timcli runs influence maximization on a graph from the command
// line: load (or synthesize) a network, pick a diffusion model and an
// algorithm, and print the selected seeds with diagnostics.
//
// Examples:
//
//	timcli -graph network.txt -k 50 -algo tim+ -model ic -weights wc
//	timcli -profile epinions -scale tiny -k 20 -algo irie -eval 10000
//	timcli -profile nethept -scale small -k 10 -model lt -algo simpath
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

// jsonOutput is the machine-readable result emitted by -json.
type jsonOutput struct {
	Algorithm string   `json:"algorithm"`
	Model     string   `json:"model"`
	K         int      `json:"k"`
	Nodes     int      `json:"nodes"`
	Edges     int      `json:"edges"`
	Seeds     []uint32 `json:"seeds"`
	// Spread and SpreadStderr are present only when -eval > 0.
	Spread       *float64 `json:"spread,omitempty"`
	SpreadStderr *float64 `json:"spread_stderr,omitempty"`
	// TIM diagnostics, present for tim/tim+ runs.
	KptStar *float64 `json:"kpt_star,omitempty"`
	KptPlus *float64 `json:"kpt_plus,omitempty"`
	Theta   *int64   `json:"theta,omitempty"`
}

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge list file to load (whitespace separated, '#' comments)")
		binary     = flag.Bool("binary", false, "graph file is in TIMG binary format")
		undirected = flag.Bool("undirected", false, "treat edge list lines as undirected")
		profile    = flag.String("profile", "", "generate a synthetic dataset profile instead of loading (nethept|epinions|dblp|livejournal|twitter)")
		scale      = flag.String("scale", "tiny", "profile scale: tiny|small|full")
		modelName  = flag.String("model", "ic", "diffusion model: ic|lt")
		weights    = flag.String("weights", "wc", "weight scheme: wc (weighted cascade) | uniform:<p> | trivalency | lt-random | lt-uniform | keep")
		algo       = flag.String("algo", "tim+", "algorithm: tim+|tim|dist|ris|celf++|celf|greedy|irie|simpath|degree|degreediscount|pagerank|random")
		k          = flag.Int("k", 50, "seed set size")
		shards     = flag.Int("shards", 4, "simulated machines for -algo dist")
		eps        = flag.Float64("eps", 0.1, "approximation slack epsilon")
		ell        = flag.Float64("ell", 1, "failure exponent ell (success prob 1-n^-ell)")
		seed       = flag.Uint64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "sampling workers (0 = all cores)")
		evalN      = flag.Int("eval", 0, "if > 0, Monte-Carlo samples for evaluating the selected seeds")
		celfR      = flag.Int("celf-r", 10000, "Monte-Carlo samples per estimate for greedy variants")
		risCap     = flag.Int64("ris-cap", 0, "optional cost cap for RIS (0 = faithful tau)")
		jsonOut    = flag.Bool("json", false, "emit a single JSON object instead of text")
	)
	flag.Parse()
	if err := run(*graphPath, *binary, *undirected, *profile, *scale, *modelName,
		*weights, *algo, *k, *shards, *eps, *ell, *seed, *workers, *evalN, *celfR, *risCap, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "timcli:", err)
		os.Exit(1)
	}
}

func run(graphPath string, binary, undirected bool, profile, scale, modelName,
	weights, algo string, k, shards int, eps, ell float64, seed uint64,
	workers, evalN, celfR int, risCap int64, jsonMode bool) error {

	g, err := loadGraph(graphPath, binary, undirected, profile, scale, seed)
	if err != nil {
		return err
	}
	st := repro.Stats(g)
	if !jsonMode {
		fmt.Printf("graph: n=%d m=%d avg_degree=%.2f\n", st.Nodes, st.Edges, st.AverageDegree)
	}

	if err := applyWeights(g, weights, seed); err != nil {
		return err
	}
	model, err := pickModel(modelName)
	if err != nil {
		return err
	}

	seeds, timRes, err := selectSeeds(g, model, algo, k, shards, eps, ell, seed, workers, celfR, risCap, jsonMode)
	if err != nil {
		return err
	}
	if !jsonMode {
		fmt.Printf("algorithm: %s\nseeds: %s\n", algo, joinSeeds(seeds))
	}

	var mean, stderr float64
	if evalN > 0 {
		mean, stderr = repro.EstimateSpreadStderr(g, model, seeds, repro.SpreadOptions{
			Samples: evalN, Workers: workers, Seed: seed + 1,
		})
		if !jsonMode {
			fmt.Printf("spread: %.2f +- %.2f (%d Monte-Carlo samples)\n", mean, stderr, evalN)
		}
	}
	if jsonMode {
		out := jsonOutput{
			Algorithm: algo,
			Model:     strings.ToLower(modelName),
			K:         k,
			Nodes:     st.Nodes,
			Edges:     st.Edges,
			Seeds:     seeds,
		}
		if evalN > 0 {
			out.Spread = &mean
			out.SpreadStderr = &stderr
		}
		if timRes != nil {
			out.KptStar = &timRes.KptStar
			out.KptPlus = &timRes.KptPlus
			out.Theta = &timRes.Theta
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	return nil
}

func loadGraph(path string, binary, undirected bool, profile, scale string, seed uint64) (*repro.Graph, error) {
	switch {
	case path != "" && profile != "":
		return nil, fmt.Errorf("-graph and -profile are mutually exclusive")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if binary {
			return repro.LoadBinary(f)
		}
		return repro.LoadEdgeList(f, undirected)
	case profile != "":
		return repro.GenerateDataset(profile, scale, seed)
	default:
		return nil, fmt.Errorf("one of -graph or -profile is required")
	}
}

func applyWeights(g *repro.Graph, scheme string, seed uint64) error {
	switch {
	case scheme == "wc":
		repro.UseWeightedCascade(g)
	case scheme == "trivalency":
		repro.UseTrivalency(g, seed)
	case scheme == "lt-random":
		repro.UseRandomLTWeights(g, seed)
	case scheme == "lt-uniform":
		repro.UseUniformLTWeights(g)
	case scheme == "keep":
		// Use the weights carried by the input file.
	case strings.HasPrefix(scheme, "uniform:"):
		var p float64
		if _, err := fmt.Sscanf(scheme, "uniform:%g", &p); err != nil {
			return fmt.Errorf("bad uniform weight %q: %w", scheme, err)
		}
		return repro.UseUniformIC(g, float32(p))
	default:
		return fmt.Errorf("unknown weight scheme %q", scheme)
	}
	return nil
}

func pickModel(name string) (repro.Model, error) {
	switch strings.ToLower(name) {
	case "ic":
		return repro.IC(), nil
	case "lt":
		return repro.LT(), nil
	}
	return repro.Model{}, fmt.Errorf("unknown model %q (want ic or lt)", name)
}

func selectSeeds(g *repro.Graph, model repro.Model, algo string, k, shards int,
	eps, ell float64, seed uint64, workers, celfR int, risCap int64,
	quiet bool) ([]uint32, *repro.Result, error) {

	switch strings.ToLower(algo) {
	case "dist", "dist+", "tim+dist":
		res, err := repro.MaximizeDistributed(g, model, repro.DistOptions{
			K: k, Shards: shards, Epsilon: eps, Ell: ell, Seed: seed,
		})
		if err != nil {
			return nil, nil, err
		}
		if !quiet {
			var maxShard int64
			for _, b := range res.ShardMemoryBytes {
				if b > maxShard {
					maxShard = b
				}
			}
			fmt.Printf("dist: machines=%d kpt*=%.1f kpt+=%.1f theta=%d spread_est=%.1f\n",
				res.Shards, res.KptStar, res.KptPlus, res.Theta, res.SpreadEstimate)
			fmt.Printf("dist: max_shard_graph=%.2fMB net: %d msgs %.1fMB (%d expand round trips)\n",
				float64(maxShard)/(1<<20), res.Net.Messages,
				float64(res.Net.Bytes)/(1<<20), res.Net.ExpandRequests)
		}
		return res.Seeds, nil, nil
	case "tim+", "timplus", "tim":
		variant := repro.TIMPlus
		if strings.ToLower(algo) == "tim" {
			variant = repro.TIM
		}
		res, err := repro.Maximize(g, model, repro.Options{
			K: k, Epsilon: eps, Ell: ell, Variant: variant,
			Workers: workers, Seed: seed,
		})
		if err != nil {
			return nil, nil, err
		}
		if !quiet {
			printTimDiagnostics(res)
		}
		return res.Seeds, res, nil
	case "ris":
		res, err := repro.RISSelect(g, model, repro.RISOptions{
			K: k, Epsilon: eps, Ell: ell, CostCap: risCap,
			Workers: workers, Seed: seed,
		})
		if err != nil {
			return nil, nil, err
		}
		if !quiet {
			fmt.Printf("ris: tau=%d cost=%d rr_sets=%d capped=%v\n", res.Tau, res.Cost, res.RRSets, res.Capped)
		}
		return res.Seeds, nil, nil
	case "celf++", "celf", "greedy":
		strategy := repro.StrategyCELFPlusPlus
		switch strings.ToLower(algo) {
		case "celf":
			strategy = repro.StrategyCELF
		case "greedy":
			strategy = repro.StrategyPlain
		}
		res, err := repro.GreedySelect(g, model, k, repro.GreedyOptions{
			R: celfR, Workers: workers, Seed: seed, Strategy: strategy,
		})
		if err != nil {
			return nil, nil, err
		}
		if !quiet {
			fmt.Printf("greedy: evaluations=%d\n", res.Evaluations)
		}
		return res.Seeds, nil, nil
	case "irie":
		res, err := repro.IRIESelect(g, repro.IRIEOptions{K: k})
		if err != nil {
			return nil, nil, err
		}
		return res.Seeds, nil, nil
	case "simpath":
		res, err := repro.SimpathSelect(g, repro.SimpathOptions{K: k})
		if err != nil {
			return nil, nil, err
		}
		if res.Truncated && !quiet {
			fmt.Println("simpath: warning: enumeration truncated by MaxSteps")
		}
		return res.Seeds, nil, nil
	case "degree":
		seeds, err := repro.DegreeSelect(g, k)
		return seeds, nil, err
	case "degreediscount":
		seeds, err := repro.DegreeDiscountSelect(g, k, 0.01)
		return seeds, nil, err
	case "pagerank":
		seeds, err := repro.PageRankSelect(g, k)
		return seeds, nil, err
	case "random":
		seeds, err := repro.RandomSelect(g, k, seed)
		return seeds, nil, err
	}
	return nil, nil, fmt.Errorf("unknown algorithm %q", algo)
}

func printTimDiagnostics(res *repro.Result) {
	fmt.Printf("tim: kpt*=%.1f kpt+=%.1f theta=%d spread_est=%.1f rr_mem=%.1fMB\n",
		res.KptStar, res.KptPlus, res.Theta, res.SpreadEstimate,
		float64(res.MemoryBytes)/(1<<20))
	fmt.Printf("tim: phase times: param_est=%v refine=%v node_sel=%v total=%v\n",
		res.Timings.KptEstimation, res.Timings.Refinement,
		res.Timings.NodeSelection, res.Timings.Total)
}

func joinSeeds(seeds []uint32) string {
	parts := make([]string, len(seeds))
	for i, s := range seeds {
		parts[i] = fmt.Sprint(s)
	}
	return strings.Join(parts, ",")
}
