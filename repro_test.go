package repro

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestPublicAPIEndToEnd exercises the documented workflow: load, weight,
// maximize, evaluate.
func TestPublicAPIEndToEnd(t *testing.T) {
	const edgeList = `# tiny network
0 1
0 2
1 3
2 3
3 4
`
	g, err := LoadEdgeList(strings.NewReader(edgeList), false)
	if err != nil {
		t.Fatal(err)
	}
	UseWeightedCascade(g)
	res, err := Maximize(g, IC(), Options{K: 1, Epsilon: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("seeds=%v, want [0] (only node reaching everything)", res.Seeds)
	}
	sp := EstimateSpread(g, IC(), res.Seeds, SpreadOptions{Samples: 5000, Seed: 2})
	if sp < 1 || sp > 5 {
		t.Fatalf("spread=%v outside [1,5]", sp)
	}
}

func TestPublicGraphConstruction(t *testing.T) {
	g, err := NewGraph(3, []Edge{{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	st := Stats(g)
	if st.Nodes != 3 || st.Edges != 2 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestPublicRoundTrips(t *testing.T) {
	g := GenerateErdosRenyi(50, 200, 1)
	UseWeightedCascade(g)
	var text, bin bytes.Buffer
	if err := SaveEdgeList(&text, g); err != nil {
		t.Fatal(err)
	}
	if err := SaveBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(&text, false)
	if err != nil {
		t.Fatal(err)
	}
	g3, err := LoadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() || g3.M() != g.M() {
		t.Fatalf("round trips lost edges: %d %d %d", g.M(), g2.M(), g3.M())
	}
}

func TestPublicGenerators(t *testing.T) {
	if g := GenerateBarabasiAlbert(100, 2, 1); g.N() != 100 {
		t.Fatal("BA size")
	}
	if g := GenerateWattsStrogatz(100, 4, 0.1, 1); g.N() != 100 {
		t.Fatal("WS size")
	}
	if g := GenerateChungLu(100, 400, 2.4, 2.1, 1); g.M() != 400 {
		t.Fatal("ChungLu size")
	}
	if g := GenerateCommunity(60, 3, 0.2, 0.01, 1); g.N() != 60 {
		t.Fatal("Community size")
	}
}

func TestGenerateDataset(t *testing.T) {
	names := DatasetNames()
	if len(names) != 5 {
		t.Fatalf("datasets: %v", names)
	}
	g, err := GenerateDataset("nethept", ScaleTiny, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2000 {
		t.Fatalf("nethept tiny n=%d", g.N())
	}
	if _, err := GenerateDataset("unknown", ScaleTiny, 7); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := GenerateDataset("nethept", "enormous", 7); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestPublicBaselines(t *testing.T) {
	g := GenerateChungLu(300, 1500, 2.4, 2.1, 3)
	UseWeightedCascade(g)
	if seeds, err := DegreeSelect(g, 5); err != nil || len(seeds) != 5 {
		t.Fatalf("Degree: %v %v", seeds, err)
	}
	if seeds, err := PageRankSelect(g, 5); err != nil || len(seeds) != 5 {
		t.Fatalf("PageRank: %v %v", seeds, err)
	}
	if seeds, err := RandomSelect(g, 5, 1); err != nil || len(seeds) != 5 {
		t.Fatalf("Random: %v %v", seeds, err)
	}
	if seeds, err := DegreeDiscountSelect(g, 5, 0.05); err != nil || len(seeds) != 5 {
		t.Fatalf("DegreeDiscount: %v %v", seeds, err)
	}
	if res, err := IRIESelect(g, IRIEOptions{K: 5}); err != nil || len(res.Seeds) != 5 {
		t.Fatalf("IRIE: %v", err)
	}
	if res, err := RISSelect(g, IC(), RISOptions{K: 5, Epsilon: 0.5, Seed: 2}); err != nil || len(res.Seeds) != 5 {
		t.Fatalf("RIS: %v", err)
	}
	if res, err := GreedySelect(g, IC(), 2, GreedyOptions{R: 50, Seed: 3}); err != nil || len(res.Seeds) != 2 {
		t.Fatalf("Greedy: %v", err)
	}
	UseRandomLTWeights(g, 4)
	if res, err := SimpathSelect(g, SimpathOptions{K: 3}); err != nil || len(res.Seeds) != 3 {
		t.Fatalf("SIMPATH: %v", err)
	}
}

func TestCustomTriggeringModel(t *testing.T) {
	// A sampler that returns every in-neighbor with certainty turns
	// reachability deterministic: the RR set for v is everything that
	// reaches v, so the best seed on a path is its source.
	g, err := NewGraph(4, []Edge{
		{From: 0, To: 1, Weight: 1},
		{From: 1, To: 2, Weight: 1},
		{From: 2, To: 3, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Maximize(g, TriggeringModel(allInNeighbors{}), Options{K: 1, Epsilon: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("seeds=%v, want [0]", res.Seeds)
	}
}

// allInNeighbors is a TriggerSampler whose triggering set is always the
// full in-neighborhood.
type allInNeighbors struct{}

func (allInNeighbors) AppendTrigger(dst []uint32, g *Graph, v uint32, _ *Rand) []uint32 {
	src, _ := g.InNeighbors(v)
	return append(dst, src...)
}

func TestSpreadStderr(t *testing.T) {
	g, err := NewGraph(2, []Edge{{From: 0, To: 1, Weight: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	mean, stderr := EstimateSpreadStderr(g, IC(), []uint32{0}, SpreadOptions{Samples: 50000, Seed: 6})
	if math.Abs(mean-1.5) > 0.02 {
		t.Fatalf("mean=%v", mean)
	}
	if stderr <= 0 {
		t.Fatalf("stderr=%v", stderr)
	}
}

func TestWeightingSchemes(t *testing.T) {
	g := GenerateErdosRenyi(100, 500, 9)
	if err := UseUniformIC(g, 0.05); err != nil {
		t.Fatal(err)
	}
	UseTrivalency(g, 10)
	UseUniformLTWeights(g)
	UseRandomLTWeights(g, 11)
	// After LT weighting, Maximize under LT must run.
	res, err := Maximize(g, LT(), Options{K: 3, Epsilon: 0.4, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 3 {
		t.Fatalf("seeds=%v", res.Seeds)
	}
}
