package repro

import (
	"repro/internal/dist"
)

// DistOptions configures MaximizeDistributed; see dist.Options for the
// full field contract (K, Shards, Partition, ε, ℓ, variant, seed).
type DistOptions = dist.Options

// DistResult is the output of MaximizeDistributed: the same diagnostics
// as Result plus per-shard memory footprints and simulated network
// traffic.
type DistResult = dist.Result

// DistNetStats aggregates the simulated network traffic of a
// distributed run (messages, bytes, expansion round trips, cover
// rounds).
type DistNetStats = dist.NetStats

// DistPartitionKind selects how nodes map to simulated machines.
type DistPartitionKind = dist.PartitionKind

// Partitioning strategies for MaximizeDistributed.
const (
	// DistHash partitions nodes by id modulo the shard count (default).
	DistHash = dist.Hash
	// DistBlock partitions contiguous id ranges.
	DistBlock = dist.Block
)

// ErrDistTriggeringUnsupported is returned by MaximizeDistributed for
// custom triggering models, which require whole-graph access that
// partitioned machines do not have. Use IC or LT.
var ErrDistTriggeringUnsupported = dist.ErrTriggeringUnsupported

// MaximizeDistributed runs TIM/TIM+ on a cluster of simulated machines,
// the §8 future-work direction: the graph is vertex-partitioned so no
// machine holds more than its shard, and machines cooperate through an
// accounted message-passing network. It computes exactly what Maximize
// computes — same guarantees (Theorems 1–3) — and its output for a
// fixed Seed is independent of the shard count.
func MaximizeDistributed(g *Graph, model Model, opts DistOptions) (*DistResult, error) {
	return dist.Maximize(g, model, opts)
}
