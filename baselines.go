package repro

import (
	"repro/internal/algo/greedy"
	"repro/internal/algo/heuristics"
	"repro/internal/algo/irie"
	"repro/internal/algo/ris"
	"repro/internal/algo/simpath"
	"repro/internal/rng"
)

// The baseline selectors below are the algorithms the paper compares TIM
// and TIM+ against (§7). They share the Graph/Model types with Maximize
// so results are directly comparable via EstimateSpread.

// GreedyOptions configures GreedySelect (Kempe et al.'s hill climbing
// with a Monte-Carlo oracle; strategy Plain, CELF, or CELF++).
type GreedyOptions = greedy.Options

// GreedyResult is GreedySelect's output.
type GreedyResult = greedy.Result

// Greedy strategies.
const (
	// StrategyCELFPlusPlus is Goyal et al.'s CELF++ (default; the
	// paper's Figure 3 baseline).
	StrategyCELFPlusPlus = greedy.CELFPlusPlus
	// StrategyCELF is Leskovec et al.'s lazy-forward greedy.
	StrategyCELF = greedy.CELF
	// StrategyPlain is the unoptimized original greedy.
	StrategyPlain = greedy.Plain
)

// Greedy spread oracles.
const (
	// OracleFreshMC estimates each spread with fresh Monte-Carlo
	// cascades (the literature's standard setup; default).
	OracleFreshMC = greedy.OracleFreshMC
	// OracleSnapshots pre-samples R live-edge worlds and evaluates
	// exactly against them — faster, with common-random-number
	// variance reduction.
	OracleSnapshots = greedy.OracleSnapshots
)

// GreedySelect runs Kempe et al.'s greedy (default CELF++). With r
// satisfying Lemma 10 it is (1 − 1/e − ε)-approximate, at O(kmnr) cost —
// the inefficiency TIM exists to remove.
func GreedySelect(g *Graph, model Model, k int, opts GreedyOptions) (*GreedyResult, error) {
	return greedy.Select(g, model, k, opts)
}

// RISOptions configures RISSelect (Borgs et al.'s reverse influence
// sampling with cost threshold τ).
type RISOptions = ris.Options

// RISResult is RISSelect's output.
type RISResult = ris.Result

// RISSelect runs Borgs et al.'s RIS (§2.3): RR sets are generated until
// the examined nodes+edges reach τ = C·ℓ·k(m+n)log n/ε³, then greedy
// maximum coverage picks the seeds.
func RISSelect(g *Graph, model Model, opts RISOptions) (*RISResult, error) {
	return ris.Select(g, model, opts)
}

// IRIEOptions configures IRIESelect.
type IRIEOptions = irie.Options

// IRIEResult is IRIESelect's output.
type IRIEResult = irie.Result

// IRIESelect runs the IRIE heuristic (Jung et al.) for the IC model —
// the paper's Figure 8/9 baseline. No approximation guarantee.
func IRIESelect(g *Graph, opts IRIEOptions) (*IRIEResult, error) {
	return irie.Select(g, opts)
}

// SimpathOptions configures SimpathSelect.
type SimpathOptions = simpath.Options

// SimpathResult is SimpathSelect's output.
type SimpathResult = simpath.Result

// SimpathSelect runs the SIMPATH heuristic (Goyal et al.) for the LT
// model — the paper's Figure 10/11 baseline. No approximation guarantee.
func SimpathSelect(g *Graph, opts SimpathOptions) (*SimpathResult, error) {
	return simpath.Select(g, opts)
}

// DegreeSelect returns the k highest out-degree nodes.
func DegreeSelect(g *Graph, k int) ([]uint32, error) {
	return heuristics.Degree(g, k)
}

// DegreeDiscountSelect runs Chen et al.'s degree-discount heuristic with
// assumed uniform IC probability p.
func DegreeDiscountSelect(g *Graph, k int, p float64) ([]uint32, error) {
	return heuristics.DegreeDiscount(g, k, p)
}

// PageRankSelect returns the k top nodes by reverse-graph PageRank.
func PageRankSelect(g *Graph, k int) ([]uint32, error) {
	return heuristics.PageRank(g, k, heuristics.PageRankOptions{})
}

// RandomSelect returns k distinct uniformly random nodes.
func RandomSelect(g *Graph, k int, seed uint64) ([]uint32, error) {
	return heuristics.Random(g, k, rng.New(seed))
}
