package repro_test

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"repro"
)

// TestPublicDistributed exercises the §8 distributed extension through
// the public API: shard-count invariance of the seeds and the memory /
// traffic trade.
func TestPublicDistributed(t *testing.T) {
	g := repro.GenerateBarabasiAlbert(300, 3, 5)
	repro.UseWeightedCascade(g)

	r2, err := repro.MaximizeDistributed(g, repro.IC(), repro.DistOptions{K: 4, Shards: 2, Epsilon: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r6, err := repro.MaximizeDistributed(g, repro.IC(), repro.DistOptions{K: 4, Shards: 6, Epsilon: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(r2.Seeds) != fmt.Sprint(r6.Seeds) {
		t.Fatalf("seeds vary with shard count: %v vs %v", r2.Seeds, r6.Seeds)
	}
	if r6.Net.Bytes <= r2.Net.Bytes {
		t.Fatalf("more shards should communicate more: %d vs %d bytes", r6.Net.Bytes, r2.Net.Bytes)
	}
	var max2, max6 int64
	for _, b := range r2.ShardMemoryBytes {
		if b > max2 {
			max2 = b
		}
	}
	for _, b := range r6.ShardMemoryBytes {
		if b > max6 {
			max6 = b
		}
	}
	if max6 >= max2 {
		t.Fatalf("more shards should shrink per-shard memory: %d vs %d", max6, max2)
	}

	if _, err := repro.MaximizeDistributed(g, repro.BoundedTriggerModel(2), repro.DistOptions{K: 2}); err == nil {
		t.Fatal("custom triggering must be rejected by the distributed runner")
	}
}

// TestPublicCompetitive exercises the §8 competitive extension through
// the public API: blocking semantics and the follower greedy.
func TestPublicCompetitive(t *testing.T) {
	g := repro.GenerateBarabasiAlbert(200, 3, 15)
	repro.UseWeightedCascade(g)
	arena := repro.NewArena(g, repro.IC(), repro.CompeteOptions{Samples: 400, Seed: 3})

	incumbent := []uint32{0, 1}
	res, err := arena.FollowerGreedy([][]uint32{incumbent}, repro.FollowerOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 3 || res.Share <= 0 {
		t.Fatalf("implausible follower result: %+v", res)
	}
	shares, err := arena.Shares([][]uint32{incumbent, res.Seeds})
	if err != nil {
		t.Fatal(err)
	}
	if shares[1] != res.Share {
		t.Fatalf("share mismatch: %v vs %v", shares[1], res.Share)
	}
	if _, err := arena.Shares(nil); !errors.Is(err, repro.ErrBadSeeds) {
		t.Fatalf("want ErrBadSeeds, got %v", err)
	}
}

// TestPublicWrapperSurface exercises thin public wrappers the larger
// tests do not reach: the remaining trigger-model constructors, the
// file-based loader, the Kronecker generator, and NewRand.
func TestPublicWrapperSurface(t *testing.T) {
	g := repro.GenerateKronecker(7, 0.9, 0.5, 0.5, 0.1, 400, 3)
	if g.N() == 0 || g.M() == 0 {
		t.Fatalf("kronecker generated an empty graph: n=%d m=%d", g.N(), g.M())
	}
	repro.UseWeightedCascade(g)

	for name, model := range map[string]repro.Model{
		"scaled-ic":  repro.ScaledICModel(0.5),
		"top-weight": repro.TopWeightTriggerModel(2),
	} {
		res, err := repro.Maximize(g, model, repro.Options{K: 2, Epsilon: 0.5, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Seeds) != 2 {
			t.Fatalf("%s: seeds %v", name, res.Seeds)
		}
	}

	dir := t.TempDir()
	path := dir + "/g.txt"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := repro.SaveEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g2, err := repro.LoadEdgeListFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("file round trip: (%d,%d) vs (%d,%d)", g2.N(), g2.M(), g.N(), g.M())
	}
	if _, err := repro.LoadEdgeListFile(dir+"/missing.txt", false); err == nil {
		t.Fatal("missing file must error")
	}

	r := repro.NewRand(7)
	if a, b := r.Uint64(), r.Uint64(); a == b {
		t.Fatal("rand stream stuck")
	}
}
