// Quickstart: the smallest end-to-end use of the library.
//
// Builds the paper's Figure 1 network, runs TIM+ under the independent
// cascade model, and verifies the chosen seed with a Monte-Carlo spread
// estimate.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The four-node network of Figure 1 in the paper (v1..v4 -> 0..3):
	// v2 weakly influences v1 and v4; v4 certainly influences v1;
	// v1 weakly influences v3; v3 weakly influences v4.
	g, err := repro.NewGraph(4, []repro.Edge{
		{From: 1, To: 0, Weight: 0.01},
		{From: 1, To: 3, Weight: 0.01},
		{From: 3, To: 0, Weight: 1.00},
		{From: 0, To: 2, Weight: 0.01},
		{From: 2, To: 3, Weight: 0.01},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pick the single most influential node with a (1 − 1/e − ε)
	// guarantee.
	res, err := repro.Maximize(g, repro.IC(), repro.Options{
		K:       1,
		Epsilon: 0.1,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected seed set: v%d\n", res.Seeds[0]+1)
	fmt.Printf("estimated spread (from RR coverage): %.3f nodes\n", res.SpreadEstimate)
	fmt.Printf("theta (RR sets sampled): %d, KPT* = %.3f, KPT+ = %.3f\n",
		res.Theta, res.KptStar, res.KptPlus)

	// Cross-check with forward Monte-Carlo simulation.
	mc, stderr := repro.EstimateSpreadStderr(g, repro.IC(), res.Seeds, repro.SpreadOptions{
		Samples: 100_000,
		Seed:    7,
	})
	fmt.Printf("Monte-Carlo spread: %.3f +- %.3f\n", mc, stderr)

	// Example 1 of the paper reasons that v4 is the best single seed:
	// it certainly activates v1, while every other node's influence is
	// mostly limited to itself.
	if res.Seeds[0] == 3 {
		fmt.Println("matches the paper's Example 1: v4 is the best single seed")
	}
}
