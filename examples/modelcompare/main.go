// Algorithm and model comparison: a miniature of the paper's §7.
//
// On one synthetic social network this example runs TIM+, TIM, IRIE,
// SIMPATH, CELF++ (reduced sample count), degree, PageRank, and random
// selection — under both the IC and LT models where applicable — and
// prints a quality/runtime scoreboard.
//
//	go run ./examples/modelcompare
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

const (
	k       = 10
	mc      = 20_000
	netSeed = 99
)

type row struct {
	name    string
	seconds float64
	spread  float64
}

func main() {
	g, err := repro.GenerateDataset("nethept", repro.ScaleTiny, netSeed)
	if err != nil {
		log.Fatal(err)
	}
	st := repro.Stats(g)
	fmt.Printf("network: n=%d m=%d avg_degree=%.1f\n", st.Nodes, st.Edges, st.AverageDegree)

	fmt.Printf("\n--- independent cascade (weighted cascade p(e)=1/indeg) ---\n")
	repro.UseWeightedCascade(g)
	icRows := icScoreboard(g)
	printRows(icRows)

	fmt.Printf("\n--- linear threshold (random normalized weights) ---\n")
	repro.UseRandomLTWeights(g, netSeed)
	ltRows := ltScoreboard(g)
	printRows(ltRows)
}

func icScoreboard(g *repro.Graph) []row {
	model := repro.IC()
	var rows []row
	run := func(name string, sel func() ([]uint32, error)) {
		start := time.Now()
		seeds, err := sel()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		secs := time.Since(start).Seconds()
		sp := repro.EstimateSpread(g, model, seeds, repro.SpreadOptions{Samples: mc, Seed: 5})
		rows = append(rows, row{name, secs, sp})
	}
	run("TIM+", func() ([]uint32, error) {
		r, err := repro.Maximize(g, model, repro.Options{K: k, Epsilon: 0.1, Seed: 1})
		if err != nil {
			return nil, err
		}
		return r.Seeds, nil
	})
	run("TIM", func() ([]uint32, error) {
		r, err := repro.Maximize(g, model, repro.Options{K: k, Epsilon: 0.1, Variant: repro.TIM, Seed: 1})
		if err != nil {
			return nil, err
		}
		return r.Seeds, nil
	})
	run("IRIE", func() ([]uint32, error) {
		r, err := repro.IRIESelect(g, repro.IRIEOptions{K: k})
		if err != nil {
			return nil, err
		}
		return r.Seeds, nil
	})
	run("CELF++(r=200)", func() ([]uint32, error) {
		r, err := repro.GreedySelect(g, model, k, repro.GreedyOptions{R: 200, Seed: 2})
		if err != nil {
			return nil, err
		}
		return r.Seeds, nil
	})
	run("Degree", func() ([]uint32, error) { return repro.DegreeSelect(g, k) })
	run("PageRank", func() ([]uint32, error) { return repro.PageRankSelect(g, k) })
	run("Random", func() ([]uint32, error) { return repro.RandomSelect(g, k, 3) })
	return rows
}

func ltScoreboard(g *repro.Graph) []row {
	model := repro.LT()
	var rows []row
	run := func(name string, sel func() ([]uint32, error)) {
		start := time.Now()
		seeds, err := sel()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		secs := time.Since(start).Seconds()
		sp := repro.EstimateSpread(g, model, seeds, repro.SpreadOptions{Samples: mc, Seed: 6})
		rows = append(rows, row{name, secs, sp})
	}
	run("TIM+", func() ([]uint32, error) {
		r, err := repro.Maximize(g, model, repro.Options{K: k, Epsilon: 0.1, Seed: 1})
		if err != nil {
			return nil, err
		}
		return r.Seeds, nil
	})
	run("SIMPATH", func() ([]uint32, error) {
		r, err := repro.SimpathSelect(g, repro.SimpathOptions{K: k})
		if err != nil {
			return nil, err
		}
		return r.Seeds, nil
	})
	run("Degree", func() ([]uint32, error) { return repro.DegreeSelect(g, k) })
	run("Random", func() ([]uint32, error) { return repro.RandomSelect(g, k, 3) })
	return rows
}

func printRows(rows []row) {
	fmt.Printf("%-15s %10s %12s\n", "algorithm", "seconds", "spread")
	for _, r := range rows {
		fmt.Printf("%-15s %10.3f %12.1f\n", r.name, r.seconds, r.spread)
	}
}
