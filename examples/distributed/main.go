// Distributed influence maximization: the paper's §8 future work
// ("turn TIM into a distributed algorithm, so as to handle massive
// graphs that do not fit in the main memory of a single machine") run
// as a single-process simulation.
//
// The graph is vertex-partitioned over P simulated machines; RR-set
// sampling becomes a distributed reverse BFS whose frontier hops
// between shards as messages, and node selection becomes an exact
// distributed greedy cover. The example sweeps P and prints the trade
// the distribution buys: per-machine graph memory falls like 1/P while
// network traffic grows — and the selected seeds never change, because
// the simulated randomness is keyed per (batch, RR id, node) rather
// than per machine.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	const k = 20

	g, err := repro.GenerateDataset("epinions", repro.ScaleTiny, 7)
	if err != nil {
		log.Fatal(err)
	}
	repro.UseWeightedCascade(g)
	st := repro.Stats(g)
	fmt.Printf("graph: n=%d m=%d (%.1f MB adjacency)\n\n", st.Nodes, st.Edges, float64(g.MemoryFootprint())/1e6)

	fmt.Printf("%-9s %-10s %-16s %-12s %-10s %s\n",
		"machines", "wall", "max shard graph", "messages", "net MB", "first 5 seeds")
	var reference []uint32
	for _, shards := range []int{1, 2, 4, 8} {
		start := time.Now()
		res, err := repro.MaximizeDistributed(g, repro.IC(), repro.DistOptions{
			K:      k,
			Shards: shards,
			Seed:   42,
		})
		if err != nil {
			log.Fatal(err)
		}
		var maxShard int64
		for _, b := range res.ShardMemoryBytes {
			if b > maxShard {
				maxShard = b
			}
		}
		fmt.Printf("%-9d %-10v %13.2f MB %-12d %-10.1f %v\n",
			shards, time.Since(start).Round(time.Millisecond),
			float64(maxShard)/1e6, res.Net.Messages,
			float64(res.Net.Bytes)/1e6, res.Seeds[:5])

		if reference == nil {
			reference = res.Seeds
			continue
		}
		for i := range reference {
			if res.Seeds[i] != reference[i] {
				log.Fatalf("seed set changed with shard count — determinism contract broken at %d", i)
			}
		}
	}

	// The distributed result matches the single-machine library call.
	single, err := repro.Maximize(g, repro.IC(), repro.Options{K: k, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	spreadDist := repro.EstimateSpread(g, repro.IC(), reference, repro.SpreadOptions{Samples: 5000, Seed: 1})
	spreadSingle := repro.EstimateSpread(g, repro.IC(), single.Seeds, repro.SpreadOptions{Samples: 5000, Seed: 1})
	fmt.Printf("\nMonte-Carlo spread: distributed %.1f vs single-machine %.1f (both (1-1/e-ε)-approximate)\n",
		spreadDist, spreadSingle)
}
