// Competitive influence maximization: the paper's §8 future work
// ("extend TIM to other formulations ... e.g., competitive influence
// maximization [2, 23]") following Bharathi, Kempe & Salek's follower's
// problem.
//
// Scenario: an incumbent brand has already signed the network's three
// most-followed accounts. A challenger with budget k enters the same
// market; both campaigns spread simultaneously, every user adopts
// whichever campaign reaches them first, and adoption is final. The
// challenger compares three strategies on the same sampled worlds:
//
//   - greedy (the follower's-problem lazy greedy),
//   - next-best-degree (buy the next k biggest accounts),
//   - copycat (contest the incumbent's own seeds head-on).
//
// Greedy maximizes the challenger's absolute expected adoptions and
// should top that column, typically by mixing both pure strategies:
// contest the hubs whose coin flips are worth half a large cascade,
// settle open territory where uncontested reach is cheaper. Note the
// share-percent column can still favor copycat — head-on collisions
// shrink the incumbent more than they grow the challenger — which is
// exactly the difference between maximizing own adoptions and
// minimizing the rival's.
//
//	go run ./examples/competitive
package main

import (
	"fmt"
	"log"
	"sort"
)

import "repro"

func main() {
	const k = 5

	g, err := repro.GenerateDataset("nethept", repro.ScaleTiny, 11)
	if err != nil {
		log.Fatal(err)
	}
	repro.UseWeightedCascade(g)
	st := repro.Stats(g)
	fmt.Printf("market: n=%d users, m=%d follow edges\n", st.Nodes, st.Edges)

	incumbent := topDegree(g, 3)
	fmt.Printf("incumbent signed accounts %v (top out-degree)\n\n", incumbent)

	arena := repro.NewArena(g, repro.IC(), repro.CompeteOptions{
		Samples: 2000,
		Seed:    7,
		Tie:     repro.TieRandom,
	})

	// Challenger strategy 1: the follower's-problem greedy.
	greedy, err := arena.FollowerGreedy([][]uint32{incumbent}, repro.FollowerOptions{K: k})
	if err != nil {
		log.Fatal(err)
	}

	// Strategy 2: buy the next k biggest accounts.
	nextDegree := topDegree(g, 3+k)[3:]

	// Strategy 3: contest the incumbent head-on (plus filler).
	copycat := append(append([]uint32{}, incumbent...), nextDegree[:k-3]...)

	fmt.Printf("%-14s %-30s %-12s %-12s %s\n", "strategy", "challenger seeds", "incumbent", "challenger", "challenger share")
	for _, s := range []struct {
		name  string
		seeds []uint32
	}{
		{"greedy", greedy.Seeds},
		{"next-degree", nextDegree},
		{"copycat", copycat},
	} {
		shares, err := arena.Shares([][]uint32{incumbent, s.seeds})
		if err != nil {
			log.Fatal(err)
		}
		total := shares[0] + shares[1]
		fmt.Printf("%-14s %-30s %-12.1f %-12.1f %.1f%%\n",
			s.name, fmt.Sprint(s.seeds), shares[0], shares[1], 100*shares[1]/total)
	}

	fmt.Printf("\ngreedy diagnostics: marginals %v, %d share evaluations (plain greedy would need %d)\n",
		round1(greedy.Marginals), greedy.Evaluations, k*st.Nodes)
}

// topDegree returns the k nodes with the highest out-degree.
func topDegree(g *repro.Graph, k int) []uint32 {
	ids := make([]uint32, g.N())
	for v := range ids {
		ids[v] = uint32(v)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := g.OutDegree(ids[i]), g.OutDegree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	return ids[:k]
}

// round1 rounds marginals for display.
func round1(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*10+0.5)) / 10
	}
	return out
}
