// Custom triggering model: the §4.2 generalization in action.
//
// The triggering model covers any diffusion process where each node v
// pre-samples a "triggering set" of in-neighbors and activates as soon as
// one member activates. IC and LT are special cases; this example builds
// a third one — a "skeptical adopters" model:
//
//   - every node only trusts a bounded number of contacts: its triggering
//     set is at most two in-neighbors, drawn without replacement, each
//     accepted with the edge's weight as probability;
//   - hubs are therefore much harder to convert than under IC, where
//     every in-edge is an independent chance.
//
// TIM+ supports this model out of the box because its guarantees need
// only Lemma 9 (RR sets under triggering distributions), not anything
// IC-specific.
//
//	go run ./examples/triggering
package main

import (
	"fmt"
	"log"

	"repro"
)

// skeptical is a repro.TriggerSampler: at most two trusted in-neighbors.
type skeptical struct{}

func (skeptical) AppendTrigger(dst []uint32, g *repro.Graph, v uint32, r *repro.Rand) []uint32 {
	src, w := g.InNeighbors(v)
	if len(src) == 0 {
		return dst
	}
	// Pick up to two candidate positions without replacement.
	first := r.Intn(len(src))
	second := -1
	if len(src) > 1 {
		second = r.Intn(len(src) - 1)
		if second >= first {
			second++
		}
	}
	for _, i := range []int{first, second} {
		if i < 0 {
			continue
		}
		// Trust the candidate with the edge's probability, scaled up
		// to compensate for auditioning only 2 of indeg contacts.
		p := float64(w[i]) * float64(len(src)) / 2
		if p > 1 {
			p = 1
		}
		if r.Bernoulli(p) {
			dst = append(dst, src[i])
		}
	}
	return dst
}

func main() {
	g, err := repro.GenerateDataset("nethept", repro.ScaleTiny, 7)
	if err != nil {
		log.Fatal(err)
	}
	repro.UseWeightedCascade(g)

	const k = 10
	skepticalModel := repro.TriggeringModel(skeptical{})

	// Maximize under the custom model.
	custom, err := repro.Maximize(g, skepticalModel, repro.Options{
		K: k, Epsilon: 0.1, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	// And under plain IC for contrast.
	ic, err := repro.Maximize(g, repro.IC(), repro.Options{
		K: k, Epsilon: 0.1, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate both seed sets under BOTH models: a seed set tuned for
	// the wrong diffusion assumptions loses reach.
	eval := func(seeds []uint32, m repro.Model) float64 {
		return repro.EstimateSpread(g, m, seeds, repro.SpreadOptions{
			Samples: 30_000, Seed: 11,
		})
	}
	fmt.Printf("seed sets (k=%d):\n", k)
	fmt.Printf("  tuned for skeptical adopters: %v\n", custom.Seeds)
	fmt.Printf("  tuned for IC:                 %v\n\n", ic.Seeds)
	fmt.Println("spread under skeptical-adopters model:")
	fmt.Printf("  skeptical-tuned seeds: %8.1f\n", eval(custom.Seeds, skepticalModel))
	fmt.Printf("  IC-tuned seeds:        %8.1f\n\n", eval(ic.Seeds, skepticalModel))
	fmt.Println("spread under IC model:")
	fmt.Printf("  skeptical-tuned seeds: %8.1f\n", eval(custom.Seeds, repro.IC()))
	fmt.Printf("  IC-tuned seeds:        %8.1f\n", eval(ic.Seeds, repro.IC()))
}
