// Viral marketing: the paper's motivating application (§1).
//
// A company wants to hand out free samples to a handful of influencers on
// a social network so the product recommendation cascades as widely as
// possible. This example:
//
//  1. synthesizes an Epinions-shaped social network (Table 2 stand-in),
//
//  2. sweeps budgets k = 1..25 with TIM+ under the weighted-cascade IC
//     model,
//
//  3. reports the marginal reach of each additional influencer (the
//     submodular "diminishing returns" curve every campaign planner
//     eventually meets), and
//
//  4. compares against the naive "pay the highest-degree accounts"
//     strategy.
//
//     go run ./examples/viralmarketing
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const budget = 25

	g, err := repro.GenerateDataset("epinions", repro.ScaleTiny, 2024)
	if err != nil {
		log.Fatal(err)
	}
	repro.UseWeightedCascade(g)
	st := repro.Stats(g)
	fmt.Printf("social network: %d users, %d follow edges (avg %.1f)\n\n",
		st.Nodes, st.Edges, st.AverageDegree)

	// One TIM+ run at the full budget: greedy pick order means prefixes
	// are near-optimal for every smaller budget too.
	res, err := repro.Maximize(g, repro.IC(), repro.Options{
		K:       budget,
		Epsilon: 0.1,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("budget  influencer  campaign reach  marginal gain")
	prev := 0.0
	for i := 1; i <= budget; i++ {
		reach := repro.EstimateSpread(g, repro.IC(), res.Seeds[:i], repro.SpreadOptions{
			Samples: 20_000, Seed: uint64(100 + i),
		})
		fmt.Printf("%4d    user %-6d  %10.1f      %+8.1f\n",
			i, res.Seeds[i-1], reach, reach-prev)
		prev = reach
	}

	// The naive strategy: pay the k most-followed accounts.
	naive, err := repro.DegreeSelect(g, budget)
	if err != nil {
		log.Fatal(err)
	}
	naiveReach := repro.EstimateSpread(g, repro.IC(), naive, repro.SpreadOptions{
		Samples: 20_000, Seed: 999,
	})
	timReach := prev
	fmt.Printf("\nTIM+ reach at k=%d:          %.1f users\n", budget, timReach)
	fmt.Printf("top-degree reach at k=%d:    %.1f users\n", budget, naiveReach)
	fmt.Printf("guaranteed-approximation premium: %+.1f%%\n",
		100*(timReach-naiveReach)/naiveReach)
}
