// Out-of-core influence maximization: the §8 future-work direction
// ("massive graphs that do not fit in the main memory of a single
// machine") made concrete.
//
// §7.4 of the paper shows TIM+'s memory is dominated by the RR-set
// collection R (∝ 1/ε², tens of GB on Twitter-scale inputs). This
// example runs the same selection twice on the same graph:
//
//   - in-memory (the default), reporting the bytes R occupies, and
//   - spilled (Options.SpillDir), where R streams to a temp file and
//     node selection runs in k+1 sequential passes with only O(n)
//     counters resident.
//
// Both produce seed sets of identical quality; the trade is wall time
// for resident memory.
//
//	go run ./examples/outofcore
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

func main() {
	const k = 20

	g, err := repro.GenerateDataset("epinions", repro.ScaleTiny, 7)
	if err != nil {
		log.Fatal(err)
	}
	repro.UseWeightedCascade(g)
	st := repro.Stats(g)
	fmt.Printf("graph: n=%d m=%d\n\n", st.Nodes, st.Edges)

	run := func(name string, opts repro.Options) *repro.Result {
		start := time.Now()
		res, err := repro.Maximize(g, repro.IC(), opts)
		if err != nil {
			log.Fatal(err)
		}
		where := "heap"
		if res.Spilled {
			where = "disk"
		}
		fmt.Printf("%-10s theta=%-8d RR storage: %6.1f MB on %-4s  wall: %v\n",
			name, res.Theta, float64(res.MemoryBytes)/(1<<20), where, time.Since(start).Round(time.Millisecond))
		return res
	}

	base := repro.Options{K: k, Epsilon: 0.1, Seed: 1}
	inMem := run("in-memory", base)

	spilledOpts := base
	spilledOpts.SpillDir = os.TempDir()
	spilled := run("spilled", spilledOpts)

	evalOpts := repro.SpreadOptions{Samples: 20000, Seed: 2}
	fmt.Printf("\nspread (20k-sample MC): in-memory %.1f, spilled %.1f\n",
		repro.EstimateSpread(g, repro.IC(), inMem.Seeds, evalOpts),
		repro.EstimateSpread(g, repro.IC(), spilled.Seeds, evalOpts))
	fmt.Println("\nthe spilled run holds only O(n) counters and a theta-bit bitmap in RAM;")
	fmt.Println("scale epsilon down or the graph up and the in-memory collection grows as 1/eps^2")
	fmt.Println("while the spilled resident set stays flat.")
}
