#!/usr/bin/env bash
# Crash-recovery smoke: the kill -9 story, end to end, with a real
# process. Two stages:
#
#   1. Determinism: apply a known update stream, record a maximize
#      answer, kill -9 the server (no graceful shutdown), restart on
#      the same -wal-dir, and require the recovered version and a
#      bit-identical answer (volatile fields stripped).
#   2. Mid-stream tear: kill -9 while an update stream is in flight,
#      restart, and require that every *acked* update survived
#      (-wal-sync=always promises exactly that) and the server answers.
#   3. Spill-tier tear: with -spill-dir and a one-collection rr-store,
#      kill -9 while eviction churn is demoting collections to disk.
#      Restart on the same spill dir and require that startup purged
#      every spill file and half-written temp (spills are a cache, not
#      a durability artifact), and that a cold resample answers
#      bit-identically to the pre-crash warm answer.
#
# Artifacts land in $OUT (default ./crash-smoke): server logs including
# the "wal recovered" lines, the pre/post answers, and the WAL itself.
set -euo pipefail

OUT="${OUT:-crash-smoke}"
PORT="${PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
DATASET='ba=ba:300:3'
mkdir -p "$OUT"
WAL="$OUT/wal"
rm -rf "$WAL"

SRV_PID=""
cleanup() { [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true; }
trap cleanup EXIT

go build -o "$OUT/timserver" ./cmd/timserver

start_server() { # $1 = log file
  "$OUT/timserver" -listen "127.0.0.1:$PORT" -dataset "$DATASET" \
    -wal-dir "$WAL" -wal-sync always -checkpoint-every 3 -seed 5 \
    >"$1" 2>&1 &
  SRV_PID=$!
  for _ in $(seq 1 100); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && return 0
    kill -0 "$SRV_PID" 2>/dev/null || { echo "server died at startup; log:"; cat "$1"; exit 1; }
    sleep 0.1
  done
  echo "server never became healthy; log:"; cat "$1"; exit 1
}

update() { # $1 = from, $2 = to
  curl -sf "$BASE/v1/update" \
    -d "{\"dataset\":\"ba\",\"insert\":[{\"from\":$1,\"to\":$2}]}"
}

# strip_volatile: maximize answers are bit-identical up to timing and
# per-request bookkeeping; drop exactly those fields before comparing.
strip_volatile() {
  python3 -c '
import json, sys
a = json.load(sys.stdin)
for k in ("elapsed_ms", "trace_id", "cached",
          "rr_sets_reused", "rr_sets_sampled", "rr_sets_repaired"):
    a.pop(k, None)
json.dump(a, sys.stdout, sort_keys=True)
'
}

recovered_version() { # recovered version of dataset ba from /v1/stats
  curl -sf "$BASE/v1/stats" | python3 -c '
import json, sys
print(json.load(sys.stdin)["wal"]["datasets"]["ba"]["recovery"]["version"])
'
}

echo "== stage 1: bit-identical recovery =="
start_server "$OUT/server1.log"
for i in 1 2 3 4 5; do
  update "$i" "$((i + 100))" >/dev/null
done
curl -sf "$BASE/v1/maximize" -d '{"dataset":"ba","k":5,"epsilon":0.3}' \
  | strip_volatile >"$OUT/pre.json"
kill -9 "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true; SRV_PID=""

start_server "$OUT/server2.log"
grep "wal recovered" "$OUT/server2.log"
ver="$(recovered_version)"
[ "$ver" = 5 ] || { echo "FAIL: recovered version $ver, want 5"; exit 1; }
curl -sf "$BASE/v1/maximize" -d '{"dataset":"ba","k":5,"epsilon":0.3}' \
  | strip_volatile >"$OUT/post.json"
cmp "$OUT/pre.json" "$OUT/post.json" \
  || { echo "FAIL: recovered answer differs from pre-crash answer"; exit 1; }
echo "OK: version 5 recovered, answer bit-identical"

echo "== stage 2: kill -9 mid-update-stream =="
(
  acked=0
  for i in $(seq 6 60); do
    update "$i" "$(((i * 7) % 300))" >/dev/null 2>&1 || break
    acked=$((acked + 1))
    echo "$acked" >"$OUT/acked"
  done
) &
STREAM_PID=$!
sleep 0.7 # let a handful of updates land, then pull the plug mid-stream
kill -9 "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true; SRV_PID=""
wait "$STREAM_PID" 2>/dev/null || true
acked="$(cat "$OUT/acked" 2>/dev/null || echo 0)"
want=$((5 + acked))

start_server "$OUT/server3.log"
grep "wal recovered" "$OUT/server3.log"
ver="$(recovered_version)"
# Every acked update must survive; one more may have been logged
# without its ack reaching the client (killed in that window).
if [ "$ver" -lt "$want" ] || [ "$ver" -gt "$((want + 1))" ]; then
  echo "FAIL: recovered version $ver after $acked acked updates (want $want or $((want + 1)))"
  exit 1
fi
curl -sf "$BASE/v1/maximize" -d '{"dataset":"ba","k":5,"epsilon":0.3}' >/dev/null
echo "OK: $acked acked updates all survived kill -9 (recovered version $ver)"
kill -9 "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true; SRV_PID=""

echo "== stage 3: kill -9 during spill-tier churn =="
SPILL="$OUT/spill"
rm -rf "$SPILL" "$WAL"

start_spill_server() { # $1 = log file
  "$OUT/timserver" -listen "127.0.0.1:$PORT" -dataset "$DATASET" \
    -spill-dir "$SPILL" -rr-collections 1 -cache 1 -seed 5 \
    >"$1" 2>&1 &
  SRV_PID=$!
  for _ in $(seq 1 100); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && return 0
    kill -0 "$SRV_PID" 2>/dev/null || { echo "server died at startup; log:"; cat "$1"; exit 1; }
    sleep 0.1
  done
  echo "server never became healthy; log:"; cat "$1"; exit 1
}

start_spill_server "$OUT/server4.log"
# Record the warm answer, then churn: with one resident collection,
# every ε change demotes the previous collection and promotes its
# spill back — the kill lands somewhere inside that write traffic.
curl -sf "$BASE/v1/maximize" -d '{"dataset":"ba","k":5,"epsilon":0.3}' \
  | strip_volatile >"$OUT/pre_spill.json"
(
  while :; do
    for eps in 0.3 0.25 0.2 0.35; do
      curl -sf "$BASE/v1/maximize" \
        -d "{\"dataset\":\"ba\",\"k\":5,\"epsilon\":$eps}" >/dev/null 2>&1 || exit 0
    done
  done
) &
CHURN_PID=$!
sleep 0.9 # let the demote/promote churn get going, then pull the plug
# The tear is only meaningful if the tier was live: require demotions
# before killing, or the purge assertion below would pass vacuously.
demotions="$(curl -sf "$BASE/v1/stats" | python3 -c '
import json, sys
print(json.load(sys.stdin)["rr_cache"]["demotions"])
')"
[ "$demotions" -gt 0 ] || { echo "FAIL: no demotions before the kill"; exit 1; }
kill -9 "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true; SRV_PID=""
kill "$CHURN_PID" 2>/dev/null || true; wait "$CHURN_PID" 2>/dev/null || true

start_spill_server "$OUT/server5.log"
# Startup purges the spill dir: every rrspill-* file — including any
# half-written rrspill-*.tmp the kill tore mid-demotion — must be gone.
debris="$(find "$SPILL" -name 'rrspill-*' 2>/dev/null || true)"
if [ -n "$debris" ]; then
  echo "FAIL: spill debris survived restart:"; echo "$debris"; exit 1
fi
curl -sf "$BASE/v1/maximize" -d '{"dataset":"ba","k":5,"epsilon":0.3}' \
  | strip_volatile >"$OUT/post_spill.json"
cmp "$OUT/pre_spill.json" "$OUT/post_spill.json" \
  || { echo "FAIL: cold resample differs from pre-crash warm answer"; exit 1; }
echo "OK: spill dir purged on restart, cold answer bit-identical"

echo "crash-recovery smoke passed"
