// Package repro is a production-quality Go implementation of TIM and TIM+
// from "Influence Maximization: Near-Optimal Time Complexity Meets
// Practical Efficiency" (Tang, Xiao, Shi — SIGMOD 2014), together with
// every substrate and baseline the paper evaluates against.
//
// # Quick start
//
//	g, err := repro.LoadEdgeListFile("network.txt", false)
//	if err != nil { ... }
//	repro.UseWeightedCascade(g) // p(e) = 1/indeg(target), the paper's IC setup
//	res, err := repro.Maximize(g, repro.IC(), repro.Options{K: 50, Epsilon: 0.1})
//	if err != nil { ... }
//	fmt.Println(res.Seeds) // (1 − 1/e − ε)-approximate with prob. ≥ 1 − 1/n
//
// # What is inside
//
//   - Maximize: TIM+ (default) and TIM — near-linear-time influence
//     maximization with approximation guarantees, under the independent
//     cascade (IC), linear threshold (LT), and general triggering models.
//   - Baselines: CELF++/CELF/Greedy (Kempe et al.), RIS (Borgs et al.),
//     IRIE, SIMPATH, and simple heuristics (degree, degree discount,
//     PageRank, random).
//   - EstimateSpread: parallel Monte-Carlo evaluation of E[I(S)].
//   - Synthetic dataset generation, including stand-ins for the paper's
//     five Table 2 datasets at configurable scales.
//   - The paper's §8 future work, implemented: MaximizeDistributed
//     (vertex-partitioned TIM+ across simulated machines with traffic
//     accounting), NewArena/FollowerGreedy (competitive influence
//     maximization, the follower's problem), and Options.SpillDir
//     (out-of-core node selection).
//   - A query server (cmd/timserver, internal/server) that loads graphs
//     once and serves repeated (k, ε, model) queries from an LRU result
//     cache and an RR-collection reuse layer; MaximizeContext and
//     Options.Source are the library-level hooks it is built on.
//
// The subpackages under internal/ hold the implementation; this package
// is the supported public surface. See README.md for the quick start,
// DESIGN.md for the architecture, and EXPERIMENTS.md for the
// reproduction of every table and figure in the paper.
package repro
