package repro

import (
	"io"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Edge is one directed edge with a model-dependent weight: the propagation
// probability p(e) under IC, or the influence weight under LT.
type Edge = graph.Edge

// Graph is a directed graph in CSR form with per-edge weights. Construct
// with NewGraph, LoadEdgeList, LoadBinary, or a generator, then apply a
// weighting scheme (UseWeightedCascade, UseRandomLTWeights, ...) before
// running algorithms, unless your edges already carry weights.
type Graph = graph.Graph

// GraphStats summarizes a graph's shape (the paper's Table 2 columns plus
// degree percentiles).
type GraphStats = graph.Stats

// NewGraph builds a graph with n nodes from directed edges. Endpoints must
// be in [0, n); weights in [0, 1].
func NewGraph(n int, edges []Edge) (*Graph, error) {
	return graph.FromEdges(n, edges)
}

// LoadEdgeList parses a whitespace-separated edge list ("from to
// [weight]" per line, '#'/'%' comments). With undirected=true every line
// yields both directions.
func LoadEdgeList(r io.Reader, undirected bool) (*Graph, error) {
	return graph.ReadEdgeList(r, undirected)
}

// LoadEdgeListFile is LoadEdgeList over a file path.
func LoadEdgeListFile(path string, undirected bool) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f, undirected)
}

// SaveEdgeList writes g as a weighted text edge list.
func SaveEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// LoadBinary reads the compact TIMG binary graph format.
func LoadBinary(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// SaveBinary writes the compact TIMG binary graph format.
func SaveBinary(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// Stats computes summary statistics of g.
func Stats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// UseWeightedCascade assigns p(e) = 1/indeg(target) to every edge — the
// weighted-cascade IC parameterization used throughout the paper's
// experiments (§7.1).
func UseWeightedCascade(g *Graph) { graph.AssignWeightedCascade(g) }

// UseUniformIC assigns the same probability p to every edge.
func UseUniformIC(g *Graph, p float32) error { return graph.AssignUniformIC(g, p) }

// UseTrivalency assigns each edge a probability drawn uniformly from
// {0.1, 0.01, 0.001}.
func UseTrivalency(g *Graph, seed uint64) { graph.AssignTrivalency(g, rng.New(seed)) }

// UseRandomLTWeights assigns each node's in-edges random weights
// normalized to sum to 1 — the paper's LT parameterization (§7.1).
func UseRandomLTWeights(g *Graph, seed uint64) {
	graph.AssignRandomNormalizedLT(g, rng.New(seed))
}

// UseUniformLTWeights assigns each of v's in-edges weight 1/indeg(v).
func UseUniformLTWeights(g *Graph) { graph.AssignUniformLT(g) }

// Dataset scales for GenerateDataset.
const (
	ScaleTiny  = "tiny"  // unit-test sized
	ScaleSmall = "small" // benchmark sized
	ScaleFull  = "full"  // the paper's Table 2 sizes
)

// DatasetNames lists the Table 2 dataset profiles available to
// GenerateDataset: nethept, epinions, dblp, livejournal, twitter.
func DatasetNames() []string {
	ps := gen.Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// GenerateDataset synthesizes a stand-in for one of the paper's Table 2
// datasets at the given scale ("tiny", "small", or "full"). The synthetic
// graph matches the original's node/edge counts (proportionally scaled),
// directedness, and heavy-tailed degree shape. Edge weights are zero;
// apply a weighting scheme before running algorithms.
func GenerateDataset(name, scale string, seed uint64) (*Graph, error) {
	p, err := gen.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	s, err := gen.ParseScale(scale)
	if err != nil {
		return nil, err
	}
	return p.Generate(s, seed), nil
}

// GenerateBarabasiAlbert grows an undirected preferential-attachment
// graph (mirrored to directed form) with the given attachment degree.
func GenerateBarabasiAlbert(n, attach int, seed uint64) *Graph {
	return gen.BarabasiAlbert(n, attach, rng.New(seed))
}

// GenerateErdosRenyi draws m uniform random directed edges over n nodes.
func GenerateErdosRenyi(n, m int, seed uint64) *Graph {
	return gen.ErdosRenyiGnm(n, m, rng.New(seed))
}

// GenerateWattsStrogatz builds a small-world ring lattice with k neighbors
// and rewiring probability beta, mirrored to directed form.
func GenerateWattsStrogatz(n, k int, beta float64, seed uint64) *Graph {
	return gen.WattsStrogatz(n, k, beta, rng.New(seed))
}

// GenerateChungLu draws m directed edges with power-law out/in degree
// weight sequences (exponents gammaOut, gammaIn).
func GenerateChungLu(n, m int, gammaOut, gammaIn float64, seed uint64) *Graph {
	return gen.ChungLuDirected(n, m, gammaOut, gammaIn, rng.New(seed))
}

// GenerateCommunity builds a directed planted-partition graph with c
// communities, intra-community edge probability pIn and inter-community
// probability pOut.
func GenerateCommunity(n, c int, pIn, pOut float64, seed uint64) *Graph {
	return gen.PlantedPartition(n, c, pIn, pOut, rng.New(seed))
}

// GenerateKronecker samples a stochastic Kronecker graph with
// 2^iterations nodes and the given edge count, from the 2x2 initiator
// [a b; c d]. Kronecker graphs reproduce the heavy tails and
// core-periphery structure of real social networks.
func GenerateKronecker(iterations int, a, b, c, d float64, edges int, seed uint64) *Graph {
	return gen.StochasticKronecker(iterations, a, b, c, d, edges, rng.New(seed))
}

// GenerateForestFire grows a forest-fire graph (Leskovec et al.): new
// nodes link to a random ambassador and recursively burn through its
// neighborhood with forward probability p and backward damping.
// Forest-fire graphs densify like real social networks.
func GenerateForestFire(n int, p, backward float64, seed uint64) *Graph {
	return gen.ForestFire(n, p, backward, rng.New(seed))
}
